"""Self-healing replication: re-replication and anti-entropy catch-up.

The paper's cluster treated node loss as routine; what makes such a
cluster *operable* is that lost replicas come back.  This module closes
that loop for the simulation.  A :class:`RecoveryManager` runs on the
shared :class:`~repro.obs.clock.SimClock` and is ticked between load
bursts (and by tests directly).  Each tick it:

* compares the fault plan's time-aware liveness against what it knew
  last tick, so node **deaths** and **rejoins** are observed exactly
  once each;
* after a death, finds every shard left under-replicated and
  **re-replicates** it onto a deterministic surviving successor node by
  copying a donor replica's segment log (charged at
  :data:`TRANSFER_COST_PER_DOC` per document shipped);
* after a rejoin, **catches the node up by anti-entropy**: its replicas'
  version vectors (per-segment ``(version, content digest)`` pairs,
  :meth:`~repro.platform.serving.shards.ShardReplica.version_vector`)
  are compared against a live donor and only the missing suffix is
  shipped — a divergent log (the donor compacted meanwhile) falls back
  to a full transfer;
* retires recovery replicas once the original host is caught up, so the
  cluster converges back to the *exact* pre-fault placement — that is
  what makes a recovered run byte-identical to one that never crashed;
* re-admits rejoined nodes into the router through explicit
  circuit-breaker half-open probes, in sorted node order
  (:meth:`~repro.platform.serving.router.ServingRouter.probe_node`);
* optionally replays the ingest write-ahead log
  (:meth:`replay_wal`) so batches accepted before a crash are re-sealed
  exactly once.

Everything is deterministic: liveness comes from the seeded
:class:`~repro.platform.faults.FaultPlan`, time from the simulated
clock, and all iteration orders are sorted.
"""

from __future__ import annotations

from typing import Any

from ..obs import Obs
from ..obs.audit import AuditEntry
from .faults import FaultPlan
from .serving.shards import ReplicatedIndex, segment_docs

#: Simulated cost of shipping one document in a recovery transfer —
#: deliberately pricier than a compaction rewrite (0.002): recovery
#: moves data across nodes, compaction rewrites it in place.
TRANSFER_COST_PER_DOC = 0.004

#: Audit-trail kind for recovery decisions.
AUDIT_KIND_RECOVERY = "recovery"


class RecoveryManager:
    """Detects deaths and rejoins; restores replication deterministically."""

    def __init__(
        self,
        index: ReplicatedIndex,
        plan: FaultPlan | None,
        obs: Obs | None = None,
        *,
        router=None,  # ServingRouter; untyped to avoid a circular import
        slo=None,  # SLOMonitor with a replication spec, if any
        wal=None,  # WriteAheadLog feeding live_indexer, if any
        live_indexer=None,  # LiveIndexer to replay WAL batches through
        transfer_cost_per_doc: float = TRANSFER_COST_PER_DOC,
    ):
        self._index = index
        self._plan = plan
        self._obs = obs if obs is not None else Obs.default()
        self._router = router
        self._slo = slo
        self._wal = wal
        self._live_indexer = live_indexer
        self._cost = transfer_cost_per_doc
        self._known_down: set[int] = set()
        self._pending_probes: set[int] = set()
        #: Extant recovery copies as (shard_id, host_node) — "in-flight"
        #: from the health surface's point of view until retired.
        self._recovery_replicas: set[tuple[int, int]] = set()
        self.events: list[dict[str, Any]] = []
        #: Sim-time from node death to replication factor restored.
        self.restore_durations: list[float] = []
        #: Sim-time each rejoining node took to catch up.
        self.catchup_durations: list[float] = []
        metrics = self._obs.metrics
        self._transfers = metrics.counter("recovery.transfers")
        self._docs_shipped = metrics.counter("recovery.docs_shipped")
        self._deaths = metrics.counter("recovery.deaths")
        self._rejoins = metrics.counter("recovery.rejoins")
        self._probes_admitted = metrics.counter("recovery.probes_admitted")
        self._under_gauge = metrics.gauge("recovery.under_replicated")
        self._inflight_gauge = metrics.gauge("recovery.inflight_replicas")
        # Writers (absorb/compact) must skip down nodes from now on.
        index.set_liveness(self.node_up)

    # -- liveness ---------------------------------------------------------------

    def node_up(self, node_id: int) -> bool:
        """Time-aware liveness, as the replicated index consults it."""
        return self._plan is None or not self._plan.node_down(
            node_id, self._obs.clock.now
        )

    @property
    def down_nodes(self) -> list[int]:
        return sorted(self._known_down)

    @property
    def recovery_replicas(self) -> list[tuple[int, int]]:
        """Extant (shard, host) recovery copies, sorted."""
        return sorted(self._recovery_replicas)

    @property
    def settled(self) -> bool:
        """Fully healed: everyone up, caught up, probed, and at RF."""
        return (
            not self._known_down
            and not self._pending_probes
            and not self._recovery_replicas
            and not self._index.under_replicated()
            and not self._diverged_shards()
        )

    # -- the tick ---------------------------------------------------------------

    def tick(self) -> dict[str, Any]:
        """One recovery pass; safe (and cheap) to call between bursts."""
        now = self._obs.clock.now
        down_now = {
            node_id
            for node_id in range(self._index.num_nodes)
            if not self.node_up(node_id)
        }
        for node_id in sorted(down_now - self._known_down):
            self._on_death(node_id)
        for node_id in sorted(self._known_down - down_now):
            self._on_rejoin(node_id)
        self._known_down = down_now
        self._retire_recovered()
        self._anti_entropy_sweep()
        if self._router is not None:
            for node_id in sorted(self._pending_probes):
                if self._router.probe_node(node_id):
                    self._pending_probes.discard(node_id)
                    self._probes_admitted.inc()
                    self._record_event("readmit", node=node_id)
        under = self._index.under_replicated()
        self._under_gauge.set(len(under))
        self._inflight_gauge.set(len(self._recovery_replicas))
        if self._slo is not None:
            for shard_id in self._index.shard_ids():
                self._slo.record_replication(shard_id not in under)
            self._slo.evaluate()
        return {
            "now": now,
            "down_nodes": sorted(down_now),
            "under_replicated": under,
            "pending_probes": sorted(self._pending_probes),
            "recovery_replicas": self.recovery_replicas,
            "settled": self.settled,
        }

    # -- death: restore the replication factor ----------------------------------

    def _on_death(self, node_id: int) -> None:
        """Re-replicate every shard the dead node leaves short of RF."""
        self._deaths.inc()
        # Serving-model deaths take effect at time zero (the node never
        # answered); the restore duration is measured from there so the
        # bench's ceiling covers detection delay, not just transfers.
        death_time = 0.0
        self._record_event("death", node=node_id)
        shards = [r.shard_id for r in self._index.replicas_on(node_id)]
        restored = True
        for shard_id in shards:
            live = [
                r
                for r in self._index.replicas_for(shard_id)
                if self.node_up(r.node_id)
            ]
            if len(live) >= self._index.replication:
                continue
            if not live:
                restored = False
                self._record_event("unrecoverable", node=node_id, shard=shard_id)
                continue
            target = self._pick_target(shard_id)
            if target is None:
                restored = False
                self._record_event("no_target", node=node_id, shard=shard_id)
                continue
            donor = live[0]
            _, docs = self._index.add_replica(shard_id, target, donor)
            self._recovery_replicas.add((shard_id, target))
            self._charge_transfer(docs)
            self._record_event(
                "replicate", node=target, shard=shard_id, docs=docs, donor=donor.node_id
            )
        if restored and shards:
            self.restore_durations.append(self._obs.clock.now - death_time)
        self._audit(
            subject=f"node{node_id}",
            decision="re-replicated" if restored else "degraded",
            reason=f"death left shards {shards} short of RF {self._index.replication}",
        )

    def _pick_target(self, shard_id: int) -> int | None:
        """Deterministic successor scan for a host not yet on the shard."""
        hosting = {r.node_id for r in self._index.replicas_for(shard_id)}
        for offset in range(self._index.num_nodes):
            candidate = (shard_id + self._index.replication + offset) % self._index.num_nodes
            if candidate not in hosting and self.node_up(candidate):
                return candidate
        return None

    # -- rejoin: anti-entropy catch-up ------------------------------------------

    def _on_rejoin(self, node_id: int) -> None:
        """Ship a rejoined node the segments it missed, digest-guided."""
        self._rejoins.inc()
        rejoined_at = self._obs.clock.now
        self._record_event("rejoin", node=node_id)
        shipped_total = 0
        for replica in self._index.replicas_on(node_id):
            donors = [
                r
                for r in self._index.replicas_for(replica.shard_id)
                if r.node_id != node_id and self.node_up(r.node_id)
            ]
            if not donors:
                continue
            docs = self._index.sync_replica(replica, donors[0])
            if docs:
                self._charge_transfer(docs)
                shipped_total += docs
                self._record_event(
                    "catchup",
                    node=node_id,
                    shard=replica.shard_id,
                    docs=docs,
                    donor=donors[0].node_id,
                )
        if self._router is not None:
            self._pending_probes.add(node_id)
        self.catchup_durations.append(self._obs.clock.now - rejoined_at)
        self._audit(
            subject=f"node{node_id}",
            decision="caught-up",
            reason=f"anti-entropy shipped {shipped_total} docs on rejoin",
        )

    def _diverged_shards(self) -> list[int]:
        """Shards whose *live* replicas disagree, by digest vector."""
        diverged = []
        for shard_id in self._index.shard_ids():
            vectors = {
                r.version_vector()
                for r in self._index.replicas_for(shard_id)
                if self.node_up(r.node_id)
            }
            if len(vectors) > 1:
                diverged.append(shard_id)
        return diverged

    def _anti_entropy_sweep(self) -> None:
        """Heal divergence among live replicas, digest-guided.

        The rejoin path catches a node whose death was *observed*; this
        sweep additionally catches an unobserved blip — a node that died
        and came back entirely between two ticks, leaving a stale replica
        that liveness alone would count as healthy.  The donor is the
        most advanced live replica: highest absorbed version, then most
        documents (a blip replica with a *hole* in its log ties on
        version but is missing content), then — when only a compaction
        was missed — the compacted, shorter log, then the lowest node id.
        """
        for shard_id in self._diverged_shards():
            live = [
                r
                for r in self._index.replicas_for(shard_id)
                if self.node_up(r.node_id)
            ]
            donor = max(
                live,
                key=lambda r: (
                    max((s.version for s in r.segments), default=-1),
                    sum(segment_docs(s) for s in r.segments),
                    -len(r.segments),
                    -r.node_id,
                ),
            )
            for replica in live:
                if replica is donor:
                    continue
                if replica.version_vector() == donor.version_vector():
                    continue
                docs = self._index.sync_replica(replica, donor)
                if docs:
                    self._charge_transfer(docs)
                self._record_event(
                    "sweep",
                    node=replica.node_id,
                    shard=shard_id,
                    docs=docs,
                    donor=donor.node_id,
                )

    def _retire_recovered(self) -> None:
        """Drop recovery copies no longer needed for the RF guarantee.

        Retiring restores the exact original placement — the property
        the determinism gate relies on.  A copy is kept while any other
        host of its shard is still down.
        """
        for shard_id, host in sorted(self._recovery_replicas):
            live_without = sum(
                1
                for r in self._index.replicas_for(shard_id)
                if r.node_id != host and self.node_up(r.node_id)
            )
            if live_without >= self._index.replication:
                self._index.drop_replica(shard_id, host)
                self._recovery_replicas.discard((shard_id, host))
                self._record_event("retire", node=host, shard=shard_id)

    # -- WAL replay --------------------------------------------------------------

    def replay_wal(self) -> int:
        """Re-apply every unsealed WAL batch through the live indexer.

        Exactly-once: each replayed batch is sealed by
        :meth:`~repro.platform.segments.LiveIndexer.apply_batch`, so a
        second replay finds nothing to do; tombstones make a re-applied
        segment mask any half-applied copy from before the crash.
        Returns the number of batches replayed.
        """
        if self._wal is None or self._live_indexer is None:
            return 0
        replayed = 0
        for record in list(self._wal.replay()):
            self._live_indexer.apply_batch(list(record.deltas), lsn=record.lsn)
            replayed += 1
            self._record_event("wal_replay", lsn=record.lsn, docs=len(record.deltas))
        return replayed

    # -- bookkeeping -------------------------------------------------------------

    def _charge_transfer(self, docs: int) -> None:
        self._transfers.inc()
        self._docs_shipped.inc(docs)
        self._obs.clock.advance(self._cost * docs)

    def _record_event(self, kind: str, **fields: Any) -> None:
        event = {"kind": kind, "at": self._obs.clock.now, **fields}
        self.events.append(event)

    def _audit(self, *, subject: str, decision: str, reason: str) -> None:
        self._obs.audit.record(
            AuditEntry(
                kind=AUDIT_KIND_RECOVERY,
                subject=subject,
                decision=decision,
                reason=reason,
            )
        )

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view for the health surface."""
        return {
            "down_nodes": self.down_nodes,
            "pending_probes": sorted(self._pending_probes),
            "inflight_replicas": self.recovery_replicas,
            "live_replication": {
                str(shard): live
                for shard, live in sorted(self._index.live_replication().items())
            },
            "under_replicated": self._index.under_replicated(),
            "transfers": int(self._transfers.value),
            "docs_shipped": int(self._docs_shipped.value),
            "settled": self.settled,
        }

    def summary(self) -> dict[str, Any]:
        """Run-level recovery stats for the serving scenario report."""
        return {
            "deaths": int(self._deaths.value),
            "rejoins": int(self._rejoins.value),
            "transfers": int(self._transfers.value),
            "docs_shipped": int(self._docs_shipped.value),
            "probes_admitted": int(self._probes_admitted.value),
            "restore_durations": list(self.restore_durations),
            "catchup_durations": list(self.catchup_durations),
            "under_replicated": self._index.under_replicated(),
            "settled": self.settled,
        }
