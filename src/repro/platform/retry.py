"""Retry policy for Vinci requests, in simulated cost units.

WebFountain services were expected to fail transiently; callers retried
with backoff rather than aborting a corpus run.  The simulation has no
wall clock, so backoff is charged in the same *simulated work units*
the cluster already uses for makespan accounting: a retried request
makes the run "take longer" in exactly the way Figure-1-style reports
can show, without any ``sleep``.

Jitter is drawn from a seeded RNG (the fault plan's seed by default) so
retried schedules stay deterministic run-to-run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with optional seeded jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    request plus at most two retries.  ``backoff(attempt)`` is the cost
    charged *before* retry number ``attempt`` (1-based), growing by
    ``multiplier`` each time.  ``jitter`` widens each backoff by a
    uniform factor in ``[1-jitter, 1+jitter]``.
    """

    max_attempts: int = 3
    base_backoff: float = 0.1
    multiplier: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff < 0:
            raise ValueError("base_backoff must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")

    def backoff(self, attempt: int, rng: random.Random | None = None) -> float:
        """Simulated cost charged before retry *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        cost = self.base_backoff * self.multiplier ** (attempt - 1)
        if self.jitter and rng is not None:
            cost *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return cost

    def allows_retry(self, attempt: int) -> bool:
        """May another attempt follow attempt number *attempt*?"""
        return attempt < self.max_attempts


#: A policy that never retries — the bus's behaviour before this module.
NO_RETRY = RetryPolicy(max_attempts=1, base_backoff=0.0)


class RetryStats:
    """Counters a bus accumulates while applying a retry policy.

    Since the observability layer landed this is a *view* over a
    :class:`~repro.obs.metrics.MetricsRegistry` — the numbers live as
    ``vinci.retries`` / ``vinci.retry_*`` series in the registry the bus
    shares with the rest of the run, and this class keeps the historical
    attribute API (including ``stats.exhausted += 1``) on top of it.
    """

    _RETRIES = "vinci.retries"
    _BACKOFF = "vinci.retry_backoff_cost"
    _EXHAUSTED = "vinci.retry_exhausted"
    _RECOVERED = "vinci.retry_recovered"
    _BY_SERVICE = "vinci.retries_by_service"

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def retries(self) -> int:
        return int(self.metrics.value(self._RETRIES))

    @property
    def backoff_cost(self) -> float:
        return self.metrics.value(self._BACKOFF)

    @property
    def exhausted(self) -> int:
        """Requests that failed even after all attempts."""
        return int(self.metrics.value(self._EXHAUSTED))

    @exhausted.setter
    def exhausted(self, value: int) -> None:
        self.metrics.counter(self._EXHAUSTED).set(value)

    @property
    def recovered(self) -> int:
        """Requests that succeeded on a retry attempt."""
        return int(self.metrics.value(self._RECOVERED))

    @recovered.setter
    def recovered(self, value: int) -> None:
        self.metrics.counter(self._RECOVERED).set(value)

    @property
    def by_service(self) -> dict[str, int]:
        return {
            dict(labels)["service"]: int(counter.value)
            for labels, counter in self.metrics.series(self._BY_SERVICE)
        }

    def record_retry(self, service: str, cost: float) -> None:
        self.metrics.counter(self._RETRIES).inc()
        self.metrics.counter(self._BACKOFF).inc(cost)
        self.metrics.counter(self._BY_SERVICE, service=service).inc()

    def record_exhausted(self) -> None:
        self.metrics.counter(self._EXHAUSTED).inc()

    def record_recovered(self) -> None:
        self.metrics.counter(self._RECOVERED).inc()

    def snapshot(self) -> dict[str, float]:
        return {
            "retries": self.retries,
            "backoff_cost": self.backoff_cost,
            "exhausted": self.exhausted,
            "recovered": self.recovered,
        }
