"""Hosted application services.

"It enables the deployment of a variety of document-level and
corpus-level miners in a scalable manner, and feeds information that
drives end-user applications through a set of hosted Web services."

These services sit behind the Vinci bus and answer the queries the
reputation-management GUI (paper Figures 4–5) issues: per-subject
sentiment counts, sentiment-bearing sentence listings, and boolean/phrase
document search.

Every handler returns the v1 envelope from :mod:`.api` — success as
``ok_envelope(data)``, client mistakes as ``error_envelope(code, msg)``
flowing through Vinci as data (raising would consume retry budget on a
call that can never succeed).  ``subjects`` and ``search`` paginate with
opaque cursors surfaced in ``meta.cursor``.
"""

from __future__ import annotations

from typing import Any

from ..core.model import Polarity
from .api import (
    ERR_BAD_CURSOR,
    ERR_BAD_REQUEST,
    ERR_NOT_FOUND,
    CursorError,
    Envelope,
    error_envelope,
    make_meta,
    ok_envelope,
    paginate,
)
from .datastore import DataStore
from .indexer import InvertedIndex, SentimentIndex
from .query import QueryParseError
from .vinci import VinciBus


def _bad_request(message: str) -> Envelope:
    return error_envelope(ERR_BAD_REQUEST, message)


def _checked_limit(
    payload: dict[str, Any], default: int
) -> tuple[int | None, Envelope | None]:
    """Validated row limit, or an error envelope for the caller to return."""
    limit = payload.get("limit", default)
    if isinstance(limit, bool) or not isinstance(limit, int) or limit < 0:
        return None, _bad_request(f"limit must be a non-negative integer, got {limit!r}")
    return limit, None


class SentimentQueryService:
    """Query-time access to the sentiment index (mode B's online half)."""

    def __init__(self, sentiment_index: SentimentIndex, store: DataStore):
        self._index = sentiment_index
        self._store = store

    def counts(self, payload: dict[str, Any]) -> Envelope:
        """``{"subject": name}`` → polarity counts."""
        if not isinstance(payload, dict):
            return _bad_request(f"payload must be a dict, got {type(payload).__name__}")
        subject = payload.get("subject")
        if not subject:
            return _bad_request("missing required field 'subject'")
        subject = str(subject)
        counts = self._index.counts(subject)
        return ok_envelope(
            {
                "subject": subject,
                "positive": counts[Polarity.POSITIVE],
                "negative": counts[Polarity.NEGATIVE],
            }
        )

    def sentences(self, payload: dict[str, Any]) -> Envelope:
        """``{"subject": name, "polarity": "+"|"-"|None, "limit": n}`` →
        sentiment-bearing sentences, the Figure-5 listing."""
        if not isinstance(payload, dict):
            return _bad_request(f"payload must be a dict, got {type(payload).__name__}")
        subject = payload.get("subject")
        if not subject:
            return _bad_request("missing required field 'subject'")
        subject = str(subject)
        polarity = payload.get("polarity")
        wanted = Polarity.from_symbol(polarity) if polarity else None
        limit, error = _checked_limit(payload, 20)
        if error is not None:
            return error
        rows = []
        for entry in self._index.query(subject, wanted)[:limit]:
            entity = self._store.get(entry.entity_id)
            snippet = ""
            if entity is not None:
                snippet = sentence_around(entity.content, entry.start, entry.end)
            rows.append(
                {
                    "entity_id": entry.entity_id,
                    "polarity": entry.polarity.value,
                    "sentence": snippet,
                }
            )
        return ok_envelope({"subject": subject, "rows": rows})

    def subjects(self, payload: dict[str, Any]) -> Envelope:
        """Ranked subjects, one cursor-paginated page per call."""
        if not isinstance(payload, dict):
            return _bad_request(f"payload must be a dict, got {type(payload).__name__}")
        limit, error = _checked_limit(payload, 50)
        if error is not None:
            return error
        totals = self._index.subject_counts()
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        try:
            page, cursor = paginate(
                ranked,
                limit=limit,
                cursor=payload.get("cursor"),
                kind="subjects",
                sort_key=lambda kv: (-kv[1], kv[0]),
            )
        except CursorError as exc:
            return error_envelope(ERR_BAD_CURSOR, str(exc))
        return ok_envelope(
            {"subjects": [name for name, _ in page]},
            meta=make_meta(cursor=cursor),
        )


class SearchService:
    """Boolean/phrase/regex document search over the inverted index."""

    def __init__(self, index: InvertedIndex):
        self._index = index

    def search(self, payload: dict[str, Any]) -> Envelope:
        if not isinstance(payload, dict):
            return _bad_request(f"payload must be a dict, got {type(payload).__name__}")
        query = payload.get("q", "")
        if not query:
            return _bad_request("missing required field 'q'")
        limit, error = _checked_limit(payload, 100)
        if error is not None:
            return error
        try:
            ids = self._index.search(query)
        except QueryParseError as exc:
            return _bad_request(f"bad query: {exc}")
        try:
            page, cursor = paginate(
                sorted(ids),
                limit=limit,
                cursor=payload.get("cursor"),
                kind="search",
                sort_key=lambda entity_id: entity_id,
            )
        except CursorError as exc:
            return error_envelope(ERR_BAD_CURSOR, str(exc))
        return ok_envelope(
            {"q": query, "total": len(ids), "ids": page},
            meta=make_meta(cursor=cursor),
        )


class StoreService:
    """Entity retrieval for application front-ends."""

    def __init__(self, store: DataStore):
        self._store = store

    def get(self, payload: dict[str, Any]) -> Envelope:
        entity_id = payload.get("entity_id", "")
        entity = self._store.get(entity_id)
        if entity is None:
            return error_envelope(ERR_NOT_FOUND, f"no such entity: {entity_id!r}")
        return ok_envelope(entity.to_record())

    def stats(self, _payload: dict[str, Any]) -> Envelope:
        return ok_envelope(dict(self._store.stats()))


def register_services(
    bus: VinciBus,
    store: DataStore,
    index: InvertedIndex,
    sentiment_index: SentimentIndex,
) -> list[str]:
    """Wire the standard application services onto the bus."""
    sentiment = SentimentQueryService(sentiment_index, store)
    search = SearchService(index)
    storage = StoreService(store)
    bindings = {
        "sentiment.counts": sentiment.counts,
        "sentiment.sentences": sentiment.sentences,
        "sentiment.subjects": sentiment.subjects,
        "search.query": search.search,
        "store.get": storage.get,
        "store.stats": storage.stats,
    }
    for name, handler in bindings.items():
        bus.register(name, handler)
    return sorted(bindings)


def sentence_around(content: str, start: int, end: int) -> str:
    """Smallest period-bounded window around [start, end)."""
    lo = max(content.rfind(".", 0, start), content.rfind("!", 0, start), content.rfind("?", 0, start))
    lo = lo + 1 if lo >= 0 else 0
    his = [content.find(ch, end) for ch in ".!?"]
    his = [h for h in his if h >= 0]
    hi = min(his) + 1 if his else len(content)
    return content[lo:hi].strip()


#: Backwards-compatible alias (pre-serving callers used the private name).
_sentence_around = sentence_around
