"""The data store: a partitioned, segmented entity store.

WebFountain stored entities on a shared-nothing cluster (512 RAID arrays
across 500+ nodes).  This simulation keeps the same *shape* at laptop
scale:

* entities are hash-partitioned across ``num_partitions`` partitions;
* each partition is a log of immutable **segments** plus an active
  in-memory memtable; a store/modify writes to the memtable, ``flush()``
  seals it into a segment;
* deletes write tombstones; ``compact()`` merges a partition's segments,
  dropping shadowed versions and tombstones;
* reads consult the memtable first, then segments newest-first.

The paper's miners only need ``store`` / ``get`` / ``scan``; the segment
machinery exists so the platform benchmarks exercise a realistic
storage-engine code path (and so compaction has something to do).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from .entity import Entity

_TOMBSTONE = None


def default_partitioner(entity_id: str, num_partitions: int) -> int:
    """Stable hash partitioning (md5, not Python's salted hash)."""
    digest = hashlib.md5(entity_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % num_partitions


@dataclass
class Segment:
    """An immutable, sealed batch of entity versions (or tombstones)."""

    segment_id: int
    records: dict[str, Entity | None] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)


class Partition:
    """One shard: memtable + segment log."""

    def __init__(self, partition_id: int, memtable_limit: int = 256):
        if memtable_limit < 1:
            raise ValueError("memtable_limit must be positive")
        self.partition_id = partition_id
        self._memtable: dict[str, Entity | None] = {}
        self._segments: list[Segment] = []
        self._memtable_limit = memtable_limit
        self._next_segment_id = 0
        #: Chaos hook (see repro.platform.faults): consulted on every
        #: write; may drop the write or substitute a corrupted entity.
        self.fault_plan = None
        self.dropped_writes = 0
        self.corrupted_writes = 0

    # -- writes -------------------------------------------------------------------

    def put(self, entity: Entity) -> None:
        if self.fault_plan is not None:
            intercepted = self.fault_plan.intercept_write(self.partition_id, entity)
            if intercepted is None:
                self.dropped_writes += 1
                return
            if intercepted is not entity:
                self.corrupted_writes += 1
            entity = intercepted
        self._memtable[entity.entity_id] = entity
        if len(self._memtable) >= self._memtable_limit:
            self.flush()

    def delete(self, entity_id: str) -> None:
        self._memtable[entity_id] = _TOMBSTONE
        if len(self._memtable) >= self._memtable_limit:
            self.flush()

    def flush(self) -> None:
        """Seal the memtable into a new segment."""
        if not self._memtable:
            return
        self._segments.append(Segment(self._next_segment_id, dict(self._memtable)))
        self._next_segment_id += 1
        self._memtable = {}

    def compact(self) -> int:
        """Merge all segments; returns the number of records dropped."""
        merged: dict[str, Entity | None] = {}
        before = 0
        for segment in self._segments:  # oldest-first; later wins
            before += len(segment)
            merged.update(segment.records)
        live = {k: v for k, v in merged.items() if v is not _TOMBSTONE}
        self._segments = (
            [Segment(self._next_segment_id, live)] if live else []
        )
        if live:
            self._next_segment_id += 1
        return before - len(live)

    # -- reads --------------------------------------------------------------------

    def get(self, entity_id: str) -> Entity | None:
        if entity_id in self._memtable:
            return self._memtable[entity_id]
        for segment in reversed(self._segments):
            if entity_id in segment.records:
                return segment.records[entity_id]
        return None

    def scan(self) -> Iterator[Entity]:
        """Live entities, latest version of each, id order."""
        seen: dict[str, Entity | None] = {}
        for segment in self._segments:
            seen.update(segment.records)
        seen.update(self._memtable)
        for entity_id in sorted(seen):
            entity = seen[entity_id]
            if entity is not _TOMBSTONE:
                yield entity

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())


class DataStore:
    """The partitioned entity store."""

    def __init__(
        self,
        num_partitions: int = 8,
        memtable_limit: int = 256,
        partitioner: Callable[[str, int], int] = default_partitioner,
        fault_plan=None,
    ):
        if num_partitions < 1:
            raise ValueError("num_partitions must be positive")
        self._partitions = [Partition(i, memtable_limit) for i in range(num_partitions)]
        self._partitioner = partitioner
        if fault_plan is not None:
            self.attach_fault_plan(fault_plan)

    def attach_fault_plan(self, fault_plan) -> None:
        """Route every partition write through *fault_plan* (chaos mode)."""
        for partition in self._partitions:
            partition.fault_plan = fault_plan

    def detach_fault_plan(self) -> None:
        for partition in self._partitions:
            partition.fault_plan = None

    @property
    def write_fault_counts(self) -> dict[str, int]:
        """Dropped/corrupted write totals across partitions."""
        return {
            "dropped": sum(p.dropped_writes for p in self._partitions),
            "corrupted": sum(p.corrupted_writes for p in self._partitions),
        }

    # -- public API ------------------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def partition_of(self, entity_id: str) -> Partition:
        return self._partitions[self._partitioner(entity_id, len(self._partitions))]

    def partition(self, index: int) -> Partition:
        return self._partitions[index]

    def store(self, entity: Entity) -> None:
        """Insert or replace an entity."""
        self.partition_of(entity.entity_id).put(entity)

    def store_all(self, entities: Iterable[Entity]) -> int:
        count = 0
        for entity in entities:
            self.store(entity)
            count += 1
        return count

    def get(self, entity_id: str) -> Entity | None:
        return self.partition_of(entity_id).get(entity_id)

    def delete(self, entity_id: str) -> None:
        self.partition_of(entity_id).delete(entity_id)

    def modify(self, entity_id: str, mutator: Callable[[Entity], None]) -> Entity:
        """Read-modify-write helper; raises KeyError when absent."""
        entity = self.get(entity_id)
        if entity is None:
            raise KeyError(entity_id)
        mutator(entity)
        self.store(entity)
        return entity

    def scan(self) -> Iterator[Entity]:
        """All live entities across partitions (partition-major order)."""
        for partition in self._partitions:
            yield from partition.scan()

    def flush(self) -> None:
        for partition in self._partitions:
            partition.flush()

    def compact(self) -> int:
        return sum(partition.compact() for partition in self._partitions)

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions)

    def __contains__(self, entity_id: str) -> bool:
        return self.get(entity_id) is not None

    def stats(self) -> dict[str, int]:
        return {
            "entities": len(self),
            "partitions": len(self._partitions),
            "segments": sum(p.segment_count for p in self._partitions),
        }

    # -- persistence -----------------------------------------------------------------

    def save(self, directory: str | Path) -> int:
        """Persist the store's live entities to *directory*.

        Layout: ``manifest.json`` (store configuration) plus one
        ``partition-<i>.jsonl`` per partition, each line one entity
        record (annotations included).  The on-disk view is compacted:
        shadowed versions and tombstones are not written.  Returns the
        number of entities written.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format": "repro-datastore-v1",
            "num_partitions": len(self._partitions),
        }
        (directory / "manifest.json").write_text(json.dumps(manifest, sort_keys=True))
        written = 0
        for partition in self._partitions:
            path = directory / f"partition-{partition.partition_id:04d}.jsonl"
            with path.open("w", encoding="utf-8") as stream:
                for entity in partition.scan():
                    stream.write(entity.to_json() + "\n")
                    written += 1
        return written

    @classmethod
    def load(cls, directory: str | Path, memtable_limit: int = 256) -> "DataStore":
        """Rebuild a store from :meth:`save` output."""
        directory = Path(directory)
        manifest_path = directory / "manifest.json"
        if not manifest_path.exists():
            raise FileNotFoundError(f"no datastore manifest under {directory}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != "repro-datastore-v1":
            raise ValueError(f"unknown datastore format {manifest.get('format')!r}")
        store = cls(
            num_partitions=int(manifest["num_partitions"]),
            memtable_limit=memtable_limit,
        )
        for path in sorted(directory.glob("partition-*.jsonl")):
            with path.open("r", encoding="utf-8") as stream:
                for line in stream:
                    line = line.strip()
                    if line:
                        store.store(Entity.from_json(line))
        store.flush()
        return store
