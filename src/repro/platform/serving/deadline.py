"""Deadlines over the simulated clock.

Every serving request carries a *budget* in simulated work units.  The
front door turns the budget into a :class:`Deadline` anchored on the
shared :class:`~repro.obs.clock.SimClock`; every downstream call gets
the **remainder**, never the original budget, so a request that burned
half its time queueing has only the other half left for shard reads.
Work whose deadline has expired is cancelled — the router converts it
into a ``504``-style envelope — and a response is *never* surfaced
after its deadline has passed.

Deadlines are plain data over the clock: comparing ``clock.now`` to
``expires_at`` is the entire mechanism, which is what keeps the
semantics byte-deterministic under the seeded chaos plans.
"""

from __future__ import annotations

from ...obs.clock import SimClock


class DeadlineExceeded(RuntimeError):
    """Raised when work is attempted past its deadline."""


class Deadline:
    """An absolute expiry on the simulated clock.

    Constructed from a relative *budget* (``Deadline(clock, budget=2.0)``)
    or an absolute expiry (:meth:`at`).  ``remaining`` never goes
    negative; ``expired`` flips exactly when the clock reaches
    ``expires_at``.
    """

    __slots__ = ("clock", "expires_at")

    def __init__(self, clock: SimClock, budget: float):
        if budget < 0:
            raise ValueError("deadline budget must be non-negative")
        self.clock = clock
        self.expires_at = clock.now + budget

    @classmethod
    def at(cls, clock: SimClock, expires_at: float) -> "Deadline":
        deadline = cls(clock, 0.0)
        deadline.expires_at = float(expires_at)
        return deadline

    @property
    def remaining(self) -> float:
        """Budget left, in simulated units (floored at zero)."""
        return max(0.0, self.expires_at - self.clock.now)

    @property
    def expired(self) -> bool:
        return self.clock.now >= self.expires_at

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the deadline has passed."""
        if self.expired:
            suffix = f" ({label})" if label else ""
            raise DeadlineExceeded(
                f"deadline expired{suffix}: now={self.clock.now:.6f} "
                f"expires_at={self.expires_at:.6f}"
            )

    def sub(self, budget: float) -> "Deadline":
        """A child deadline: at most *budget* more, never past the parent."""
        child = Deadline(self.clock, max(0.0, budget))
        child.expires_at = min(child.expires_at, self.expires_at)
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining:.6f})"
