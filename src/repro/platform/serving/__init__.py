"""Resilient mode-B serving: sharded replicated indexes behind a
deadline-aware front door.

The offline half of mode B builds sentiment/search indexes; this package
is the *online* half hardened for sustained query traffic under faults:

* :mod:`.shards` — subject/entity-hash partitioning of the mode-B
  indexes with replication across simulated nodes;
* :mod:`.deadline` — request budgets over the simulated clock, with
  remainder propagation to downstream calls;
* :mod:`.breaker` — per-service closed/open/half-open circuit breakers;
* :mod:`.router` — admission control, load shedding, hedged reads,
  replica failover, and graceful degradation;
* :mod:`.loadgen` — the seeded closed-loop load generator the chaos
  bench drives.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .deadline import Deadline, DeadlineExceeded
from .loadgen import (
    LoadGenerator,
    LoadProfile,
    ServingScenario,
    build_scenario,
    percentile,
)
from .router import (
    DEFAULT_BUDGET,
    OPS,
    STATUS_CODES,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_SHED,
    LatencyModel,
    LatencyProfile,
    NodeIndexService,
    ServingRequest,
    ServingRouter,
    node_service,
)
from .shards import ReplicatedIndex, ShardReplica, shard_of

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "DEFAULT_BUDGET",
    "Deadline",
    "DeadlineExceeded",
    "HALF_OPEN",
    "LatencyModel",
    "LatencyProfile",
    "LoadGenerator",
    "LoadProfile",
    "NodeIndexService",
    "OPEN",
    "OPS",
    "ReplicatedIndex",
    "STATUS_CODES",
    "STATUS_DEGRADED",
    "STATUS_ERROR",
    "STATUS_EXPIRED",
    "STATUS_OK",
    "STATUS_SHED",
    "ServingRequest",
    "ServingRouter",
    "ServingScenario",
    "ShardReplica",
    "build_scenario",
    "node_service",
    "percentile",
    "shard_of",
]
