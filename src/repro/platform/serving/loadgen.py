"""Closed-loop deterministic load generation for the serving router.

The acceptance story for the serving layer is a *bench*, not a unit
test: generate a realistic request mix (counts-heavy, like the paper's
reputation GUI), drive it through the router while a seeded
:class:`~repro.platform.faults.FaultPlan` kills an index node and fails
a slice of service calls, and report availability / latency percentiles
/ shed rate.  Everything is seeded — the corpus, the request mix, the
fault plan, the latency draws — so two runs with the same seed produce
byte-identical reports.

The generator is *closed-loop*: it submits a burst, drains the router
(serving every queued request to completion or shedding), records the
envelopes, and only then submits the next burst — the model is a fixed
population of clients that wait for answers, not an open firehose.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from ...core import SentimentMiner, Subject
from ...corpora import DOMAINS, ReviewGenerator
from ...obs import Obs, SLOMonitor, replication_slo
from ..api import validate_envelope
from ..chaos import DEFAULT_RESTART_WINDOW, schedule_restarts
from ..datastore import DataStore
from ..entity import Entity
from ..faults import FAIL, TIMEOUT, FaultPlan
from ..ingestion import DELTA_ADD, DocumentDelta
from ..recovery import RecoveryManager
from ..segments import CompactionPolicy, DeltaIndexer, LiveIndexer
from ..vinci import VinciBus
from ..wal import WriteAheadLog
from .router import (
    DEFAULT_BUDGET,
    STATUS_DEGRADED,
    STATUS_OK,
    ServingRouter,
    node_service,
)
from .shards import ReplicatedIndex


@dataclass(frozen=True)
class LoadProfile:
    """Shape of the generated request stream."""

    requests: int = 300
    burst_min: int = 2
    burst_max: int = 8
    budget_min: float = 3.0
    budget_max: float = 2.0 * DEFAULT_BUDGET
    #: op → relative weight; counts-heavy like the reputation GUI.
    op_weights: tuple[tuple[str, float], ...] = (
        ("counts", 0.45),
        ("sentences", 0.25),
        ("subjects", 0.15),
        ("search", 0.15),
    )
    #: Priorities drawn uniformly from this pool (higher = shed last).
    priorities: tuple[int, ...] = (0, 1, 1, 2)


def percentile(values: list[float], q: float) -> float:
    """Deterministic nearest-rank percentile (0 for an empty series)."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must lie in [0, 1]")
    ordered = sorted(values)
    return ordered[int(q * (len(ordered) - 1))]


class LoadGenerator:
    """Seeded closed-loop client population for one :class:`ServingRouter`."""

    def __init__(
        self,
        router: ServingRouter,
        *,
        subjects: list[str],
        queries: list[str],
        seed: int = 0,
        profile: LoadProfile | None = None,
        on_burst: Any = None,
    ):
        if not subjects:
            raise ValueError("need at least one subject to query")
        if not queries:
            raise ValueError("need at least one search query")
        self._router = router
        self._subjects = list(subjects)
        self._queries = list(queries)
        self._rng = random.Random(seed)
        self.profile = profile or LoadProfile()
        #: Optional zero-arg hook invoked after each drained burst —
        #: the recovery manager's tick rides the same cadence as SLO
        #: evaluation so healing happens between bursts, never mid-read.
        self._on_burst = on_burst
        #: Every (request, envelope) pair from the most recent run() —
        #: the trace-completeness gate audits these against the span dump.
        self.last_outcomes: list[tuple[Any, dict[str, Any]]] = []

    def _draw_request(self):
        profile = self.profile
        ops = [op for op, _ in profile.op_weights]
        weights = [w for _, w in profile.op_weights]
        op = self._rng.choices(ops, weights=weights, k=1)[0]
        payload: dict[str, Any] = {}
        if op in ("counts", "sentences"):
            payload["subject"] = self._rng.choice(self._subjects)
            if op == "sentences" and self._rng.random() < 0.4:
                payload["polarity"] = self._rng.choice(["+", "-"])
        elif op == "search":
            payload["q"] = self._rng.choice(self._queries)
        budget = profile.budget_min + self._rng.random() * (
            profile.budget_max - profile.budget_min
        )
        priority = self._rng.choice(profile.priorities)
        return self._router.make_request(
            op, payload, priority=priority, budget=budget
        )

    def run(self) -> dict[str, Any]:
        """Drive the full profile through the router; return the report."""
        profile = self.profile
        outcomes: list[tuple[Any, dict[str, Any]]] = []
        submitted = 0
        while submitted < profile.requests:
            burst = self._rng.randint(profile.burst_min, profile.burst_max)
            burst = min(burst, profile.requests - submitted)
            for _ in range(burst):
                request = self._draw_request()
                submitted += 1
                immediate = self._router.submit(request)
                if immediate is not None:
                    outcomes.append((request, immediate))
            outcomes.extend(self._router.drain())
            # Burn rates are re-evaluated once per drained burst: bursts
            # are the closed-loop clock ticks alerts can fire on.
            if self._router.slo is not None:
                self._router.slo.evaluate()
            if self._on_burst is not None:
                self._on_burst()
        self.last_outcomes = list(outcomes)
        return self._report(outcomes)

    def _report(
        self, outcomes: list[tuple[Any, dict[str, Any]]]
    ) -> dict[str, Any]:
        total = len(outcomes)
        by_status: dict[str, int] = {}
        served_latencies: list[float] = []
        late = 0
        malformed = 0
        for request, envelope in outcomes:
            # Every response must be a well-formed v1 envelope.
            if validate_envelope(envelope):
                malformed += 1
                continue
            status = envelope["meta"]["status"]
            by_status[status] = by_status.get(status, 0) + 1
            if status in (STATUS_OK, STATUS_DEGRADED):
                served_latencies.append(envelope["meta"]["latency"])
                # An answer at or past the deadline is a contract breach.
                if envelope["meta"]["latency"] >= request.budget:
                    late += 1
        served = by_status.get(STATUS_OK, 0) + by_status.get(STATUS_DEGRADED, 0)
        metrics = self._router.obs.metrics
        report = {
            "requests": total,
            "responses_by_status": dict(sorted(by_status.items())),
            "availability": served / total if total else 0.0,
            "p50_latency": percentile(served_latencies, 0.50),
            "p99_latency": percentile(served_latencies, 0.99),
            "shed_rate": by_status.get("shed", 0) / total if total else 0.0,
            "degraded": by_status.get(STATUS_DEGRADED, 0),
            "expired": by_status.get("expired", 0),
            "errors": by_status.get("error", 0),
            "late_responses": late,
            "malformed_responses": malformed,
            "hedges": int(metrics.counter("serving.hedges").value),
            "hedge_wins": int(metrics.counter("serving.hedge_wins").value),
            "failovers": int(metrics.counter("serving.failovers").value),
            "breakers": self._router.breaker_snapshots(),
        }
        if self._router.slo is not None:
            report["slo"] = self._router.slo.status_snapshot()
        return report


@dataclass
class ServingScenario:
    """A fully-wired serving stack ready to drive: router + generator + plan."""

    router: ServingRouter
    generator: LoadGenerator
    plan: FaultPlan | None
    obs: Obs
    chaos_seed: int | None
    live_indexer: LiveIndexer | None = None
    recovery: RecoveryManager | None = None
    wal: WriteAheadLog | None = None

    #: Upper bound on post-run settle ticks; generous — a single
    #: death/rejoin pair settles in two or three.
    SETTLE_TICKS = 64

    def run(self) -> dict[str, Any]:
        report = self.generator.run()
        if self.recovery is not None:
            # Let recovery finish after the load stops: tick until the
            # cluster is healed (node rejoined, caught up, re-admitted,
            # recovery replicas retired) so the report describes a
            # settled cluster — the state the determinism gate compares.
            for _ in range(self.SETTLE_TICKS):
                if self.recovery.settled:
                    break
                self.obs.clock.advance(0.5)
                self.recovery.tick()
            report["recovery"] = self.recovery.summary()
        report["chaos_seed"] = self.chaos_seed
        report["placement"] = {
            str(shard): nodes for shard, nodes in self.router.index.placement().items()
        }
        if self.plan is not None:
            report["faults_injected"] = self.plan.faults_injected
            report["fault_summary"] = self.plan.summary()
            report["dead_nodes"] = sorted(self.plan.dead_nodes)
        else:
            report["faults_injected"] = 0
            report["fault_summary"] = {}
            report["dead_nodes"] = []
        return report


def build_scenario(
    *,
    seed: int = 2005,
    docs: int = 24,
    domain: str = "digital_camera",
    num_shards: int = 8,
    num_nodes: int = 4,
    replication: int = 2,
    chaos_seed: int | None = None,
    fault_fraction: float = 0.08,
    profile: LoadProfile | None = None,
    queue_limit: int = 24,
    breaker_cooldown: float = 0.5,
    obs: Obs | None = None,
    batches: int | None = None,
    compaction: CompactionPolicy | None = None,
    slo: SLOMonitor | None = None,
    restarts: bool = False,
) -> ServingScenario:
    """Mine a synthetic corpus, shard it, and wire the front door.

    With ``batches=None`` the corpus is mined and indexed in one offline
    pass (the classic mode-B build).  With ``batches=N`` the same
    documents flow through the incremental path instead — N delta
    batches, each sealed into a segment, absorbed by the shards and
    background-compacted — and the determinism gate requires the two
    builds to serve byte-identical reports for the same seed.

    With ``chaos_seed`` set, the fault plan kills one node (chosen by the
    seed) and schedules ``fault_fraction`` × requests service faults
    across the surviving node endpoints — the bench's "kill one index
    node, ≥5% service fault rate" regime.

    With ``restarts=True`` on top of ``chaos_seed``, the dead node also
    *comes back*: :func:`~repro.platform.chaos.schedule_restarts` draws
    a seeded rejoin time, ingest batches go through a
    :class:`~repro.platform.wal.WriteAheadLog` before touching the
    index, and a :class:`~repro.platform.recovery.RecoveryManager`
    (ticked between bursts) re-replicates, catches the node up by
    anti-entropy, and re-admits it through breaker probes.
    """
    obs = obs if obs is not None else Obs.default()
    profile = profile or LoadProfile()

    # -- the analyze→index half of mode B ----------------------------------
    vocab = DOMAINS[domain]
    documents = ReviewGenerator(vocab, seed=seed).generate_dplus(docs)
    subjects = [Subject(p) for p in vocab.products] + [
        Subject(f) for f in vocab.features
    ]
    miner = SentimentMiner(subjects=subjects, obs=obs)

    plan: FaultPlan | None = None
    if chaos_seed is not None:
        plan = FaultPlan(chaos_seed)
        rng = random.Random(chaos_seed)
        doomed = rng.randrange(num_nodes)
        plan.kill_node(doomed, after_partitions=0)
        survivors = [n for n in range(num_nodes) if n != doomed]
        per_node = max(1, round(fault_fraction * profile.requests / len(survivors)))
        for node_id in survivors:
            kind = TIMEOUT if rng.random() < 0.5 else FAIL
            plan.fail_service(node_service(node_id), count=per_node, kind=kind)

    wal: WriteAheadLog | None = None
    if restarts and plan is not None:
        wal = WriteAheadLog(obs=obs)
        if slo is not None:
            slo.add_spec(replication_slo())
        # Writers must treat the doomed node as down from the start, so
        # its replicas genuinely miss segments and anti-entropy has real
        # work on rejoin.  The recovery manager re-installs the same
        # liveness view when it is constructed below.
        index_liveness = lambda node_id: not plan.node_down(  # noqa: E731
            node_id, obs.clock.now
        )

    store = DataStore()
    store.store_all(
        Entity(entity_id=d.doc_id, content=d.text) for d in documents
    )
    index = ReplicatedIndex(num_shards, num_nodes, replication=replication)
    if wal is not None:
        index.set_liveness(index_liveness)
    live: LiveIndexer | None = None
    if batches is None:
        result = miner.mine_corpus((d.doc_id, d.text) for d in documents)
        index.add_judgments(result.polar_judgments())
        index.add_entities(
            Entity(entity_id=d.doc_id, content=d.text) for d in documents
        )
    else:
        if batches < 1:
            raise ValueError("batches must be positive")
        live = LiveIndexer(
            index,
            DeltaIndexer(miner, obs=obs),
            obs=obs,
            policy=compaction or CompactionPolicy(),
            wal=wal,
        )
        deltas = [
            DocumentDelta(
                kind=DELTA_ADD,
                entity_id=d.doc_id,
                entity=Entity(entity_id=d.doc_id, content=d.text),
            )
            for d in documents
        ]
        size = max(1, -(-len(deltas) // batches))  # ceil division
        for start in range(0, len(deltas), size):
            batch = deltas[start : start + size]
            # WAL ordering: the batch is durable before any index
            # mutation; apply_batch seals the record once absorbed.
            lsn = wal.append(batch) if wal is not None else 0
            stats = live.apply_batch(batch, lsn=lsn)
            if slo is not None:
                slo.record_freshness(stats["freshness_lag"])

    # No bus-level retry policy: the router does explicit replica failover,
    # and breaker-gated fast-fails must not consume a retry budget.
    bus = VinciBus(fault_plan=plan, obs=obs)
    router = ServingRouter(
        index,
        store,
        bus,
        obs=obs,
        fault_plan=plan,
        queue_limit=queue_limit,
        breaker_cooldown=breaker_cooldown,
        latency_seed=seed,
        slo=slo,
    )
    recovery: RecoveryManager | None = None
    if wal is not None:
        # The restart window is relative to *serving* start, not sim
        # epoch: the corpus build above burns an unpredictable amount of
        # simulated time (mining cost scales with the corpus), and the
        # rejoin must land mid-run to exercise catch-up under load.  The
        # offset is derived from the deterministic clock, so the whole
        # schedule is still a pure function of the seeds.
        lo, hi = DEFAULT_RESTART_WINDOW
        now = obs.clock.now
        schedule_restarts(plan, window=(now + lo, now + hi))
        recovery = RecoveryManager(
            index,
            plan,
            obs,
            router=router,
            slo=slo,
            wal=wal,
            live_indexer=live,
        )
    query_subjects = [s.canonical for s in subjects]
    queries = [
        vocab.features[0],
        f"{vocab.products[0]} AND {vocab.features[0]}",
        f'"{vocab.features[0]}"',
        "re:/[a-z]+/",
    ]
    generator = LoadGenerator(
        router,
        subjects=query_subjects,
        queries=queries,
        seed=chaos_seed if chaos_seed is not None else seed,
        profile=profile,
        on_burst=recovery.tick if recovery is not None else None,
    )
    return ServingScenario(
        router=router,
        generator=generator,
        plan=plan,
        obs=obs,
        chaos_seed=chaos_seed,
        live_indexer=live,
        recovery=recovery,
        wal=wal,
    )
