"""The serving front door: deadlines, shedding, breakers, hedged reads.

This is the query-time half of the paper's mode B hardened for the
ROADMAP's "heavy traffic from millions of users" target.  One
:class:`ServingRouter` fronts a :class:`~.shards.ReplicatedIndex` whose
replicas live on simulated nodes behind the Vinci bus:

* **admission control** — a bounded queue; when full, the lowest
  priority request is shed with an explicit ``503``-style envelope
  (never a silent drop, never an unbounded queue);
* **deadline propagation** — every request carries a budget; each
  downstream shard read gets the *remainder*; work that cannot finish
  inside the remainder is cancelled, and no response is ever surfaced
  after its deadline;
* **per-service circuit breakers** — one
  :class:`~.breaker.CircuitBreaker` per node endpoint; open breakers
  fast-fail without touching the bus (no retry budget consumed);
* **hedged reads** — when the drawn latency of the chosen replica is
  above the adaptive latency percentile, the read races a second
  replica and the first answer wins; the loser is cancelled and its
  cost never charged;
* **graceful degradation** — a shard with no live replica is reported
  in ``missing_shards`` and the response is flagged ``degraded`` with
  partial counts instead of erroring.

All timing is simulated (:class:`~repro.obs.clock.SimClock`) and all
randomness is seeded, so a chaos run produces byte-identical reports
for a given seed.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ...core.model import Polarity
from ...obs import Obs
from ...obs.context import ROOT, extract_context, with_trace
from ...obs.slo import SLOMonitor
from ..api import (
    ERR_BAD_CURSOR,
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_SHED,
    CursorError,
    Envelope,
    decode_cursor,
    error_envelope,
    make_meta,
    ok_envelope,
    paginate,
)
from ..datastore import DataStore
from ..faults import FaultPlan
from ..query import QueryParseError, parse_query
from ..segments import ReplicaSnapshot
from ..services import sentence_around
from ..vinci import VinciBus, VinciError
from .breaker import CircuitBreaker
from .deadline import Deadline
from .shards import ReplicatedIndex, ShardReplica

#: Response statuses and their HTTP-flavoured codes.
STATUS_OK = "ok"  # 200 — complete answer
STATUS_DEGRADED = "degraded"  # 206 — partial answer, shards missing
STATUS_ERROR = "error"  # 400 — malformed request
STATUS_SHED = "shed"  # 503 — load-shed by admission control
STATUS_EXPIRED = "expired"  # 504 — deadline passed, work cancelled

STATUS_CODES = {
    STATUS_OK: 200,
    STATUS_DEGRADED: 206,
    STATUS_ERROR: 400,
    STATUS_SHED: 503,
    STATUS_EXPIRED: 504,
}

#: Ops answered by the serving layer.
OPS = ("counts", "sentences", "subjects", "search")

#: Default request budget, in simulated work units.
DEFAULT_BUDGET = 4.0

#: Default per-op row limits (mirror the unsharded services).
_DEFAULT_LIMITS = {"sentences": 20, "subjects": 50, "search": 100}

#: Budget handed to recovery probes — tiny on purpose: a probe that
#: cannot answer a ping almost instantly should not be re-admitted.
PROBE_BUDGET = 0.5


def node_service(node_id: int) -> str:
    """Vinci service name of one node's serving endpoint."""
    return f"serving.node{node_id}"


@dataclass(frozen=True)
class LatencyProfile:
    """Seeded per-read latency distribution (simulated units).

    Reads cost ``uniform(base_min, base_max)``; a ``slow_fraction`` of
    them land on a slow replica/GC pause and cost ``slow_multiplier``
    times more — the tail hedged reads exist to cut.
    """

    base_min: float = 0.04
    base_max: float = 0.12
    slow_fraction: float = 0.08
    slow_multiplier: float = 8.0


class LatencyModel:
    """Draws deterministic read latencies from a seeded RNG."""

    def __init__(self, seed: int, profile: LatencyProfile | None = None):
        self._rng = random.Random(seed)
        self.profile = profile or LatencyProfile()

    def draw(self, node_id: int) -> float:
        p = self.profile
        latency = p.base_min + self._rng.random() * (p.base_max - p.base_min)
        if self._rng.random() < p.slow_fraction:
            latency *= p.slow_multiplier
        return latency


@dataclass(frozen=True)
class ServingRequest:
    """One front-door request."""

    request_id: int
    op: str
    payload: dict[str, Any]
    priority: int = 1  # higher = more important, shed last
    budget: float = DEFAULT_BUDGET


@dataclass
class _QueueEntry:
    request: ServingRequest
    deadline: Deadline
    submitted_at: float
    payload: dict[str, Any] = field(default_factory=dict)  # validated/normalised


class NodeIndexService:
    """One node's serving endpoint: every shard replica it hosts.

    The Vinci-facing :meth:`handle` unpacks the propagated budget into a
    :class:`Deadline` and dispatches to the per-op ``answer_*`` methods,
    all of which take the deadline explicitly (lint rule PLAT002).
    """

    def __init__(
        self,
        node_id: int,
        index: ReplicatedIndex,
        store: DataStore,
        obs: Obs,
        fault_plan: FaultPlan | None = None,
    ):
        self.node_id = node_id
        self._store = store
        self._obs = obs
        self._fault_plan = fault_plan
        # The index is consulted live (never cached): the recovery
        # manager adds and drops replicas while the cluster serves, and
        # a node must answer for whatever it hosts *now*.
        self._index = index

    @property
    def shard_ids(self) -> list[int]:
        return sorted(
            replica.shard_id for replica in self._index.replicas_on(self.node_id)
        )

    def handle(self, payload: dict[str, Any]) -> Envelope:
        """Vinci handler: dict payload in, v1 envelope out.

        The read goes through a :class:`~repro.platform.segments.ReplicaSnapshot`
        at the version the router pinned for the request, so an absorb or
        compaction racing the read never produces a torn view.  The span
        joins the caller's trace: in-process the bus's ``vinci.attempt``
        span is already on the stack; invoked out-of-band, the context
        threaded into the payload supplies the parent instead.
        """
        parent = (
            extract_context(payload) if self._obs.tracer.current is None else None
        )
        with self._obs.tracer.span(
            "serving.node_read",
            parent=parent,
            node=self.node_id,
            op=payload.get("op", ""),
            shard=payload.get("shard"),
        ):
            if self._fault_plan is not None and self._fault_plan.node_down(
                self.node_id, self._obs.clock.now
            ):
                raise VinciError(f"node {self.node_id} is down")
            deadline = Deadline(self._obs.clock, float(payload.get("budget", 0.0)))
            op = payload.get("op", "")
            if op == "ping":
                return self.answer_ping(payload, deadline)
            shard_id = payload.get("shard")
            replica = (
                self._index.replica_on(self.node_id, shard_id)
                if shard_id is not None
                else None
            )
            if replica is None:
                raise VinciError(
                    f"node {self.node_id} hosts no replica of shard {shard_id!r}"
                )
            snapshot = replica.view(payload.get("version"))
            if op == "counts":
                return self.answer_counts(snapshot, payload, deadline)
            if op == "sentences":
                return self.answer_sentences(snapshot, payload, deadline)
            if op == "subjects":
                return self.answer_subjects(snapshot, payload, deadline)
            if op == "search":
                return self.answer_search(snapshot, payload, deadline)
            raise VinciError(f"unknown serving op {op!r}")

    # -- per-op answers (each accepts and honours the propagated Deadline) ------

    def answer_ping(self, payload: dict[str, Any], deadline: Deadline) -> Envelope:
        """Liveness probe: reaching this line at all means the node is up."""
        deadline.check("ping")
        return ok_envelope({"node": self.node_id, "status": "up"})

    def answer_counts(
        self, snapshot: ReplicaSnapshot, payload: dict[str, Any], deadline: Deadline
    ) -> Envelope:
        deadline.check("counts")
        subject = payload["subject"]
        counts = snapshot.sentiment.counts(subject)
        return ok_envelope(
            {
                "subject": subject,
                "positive": counts[Polarity.POSITIVE],
                "negative": counts[Polarity.NEGATIVE],
            }
        )

    def answer_sentences(
        self, snapshot: ReplicaSnapshot, payload: dict[str, Any], deadline: Deadline
    ) -> Envelope:
        deadline.check("sentences")
        subject = payload["subject"]
        polarity = payload.get("polarity")
        wanted = Polarity.from_symbol(polarity) if polarity else None
        limit = payload.get("limit", _DEFAULT_LIMITS["sentences"])
        rows = []
        for entry in snapshot.sentiment.query(subject, wanted)[:limit]:
            entity = self._store.get(entry.entity_id)
            snippet = ""
            if entity is not None:
                snippet = sentence_around(entity.content, entry.start, entry.end)
            rows.append(
                {
                    "entity_id": entry.entity_id,
                    "polarity": entry.polarity.value,
                    "sentence": snippet,
                }
            )
        return ok_envelope({"subject": subject, "rows": rows})

    def answer_subjects(
        self, snapshot: ReplicaSnapshot, payload: dict[str, Any], deadline: Deadline
    ) -> Envelope:
        deadline.check("subjects")
        return ok_envelope({"counts": snapshot.sentiment.subject_counts()})

    def answer_search(
        self, snapshot: ReplicaSnapshot, payload: dict[str, Any], deadline: Deadline
    ) -> Envelope:
        deadline.check("search")
        ids = snapshot.inverted.search(payload["query_ast"])
        return ok_envelope({"ids": sorted(ids)})


class ServingRouter:
    """The resilient mode-B front door (see module docstring)."""

    def __init__(
        self,
        index: ReplicatedIndex,
        store: DataStore,
        bus: VinciBus,
        *,
        obs: Obs | None = None,
        fault_plan: FaultPlan | None = None,
        queue_limit: int = 32,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        hedge_threshold: float | None = None,
        hedge_percentile: float = 0.95,
        hedge_warmup: int = 20,
        latency_seed: int = 0,
        latency_model: LatencyModel | None = None,
        request_overhead: float = 0.01,
        slo: SLOMonitor | None = None,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        if not 0.0 < hedge_percentile < 1.0:
            raise ValueError("hedge_percentile must lie in (0, 1)")
        self._index = index
        self._store = store
        self._bus = bus
        self._obs = obs if obs is not None else bus.obs
        self._fault_plan = fault_plan
        self._queue_limit = queue_limit
        # Bounded by construction (PLAT002): admission control below
        # sheds explicitly before this maxlen could ever evict silently.
        self._queue: deque[_QueueEntry] = deque(maxlen=queue_limit)
        self._pending: list[tuple[ServingRequest, dict[str, Any]]] = []
        self._latency = latency_model or LatencyModel(latency_seed)
        self._hedge_threshold = hedge_threshold
        self._hedge_percentile = hedge_percentile
        self._hedge_warmup = hedge_warmup
        # Recent winner latencies for the adaptive hedge percentile.
        self._latency_window: deque[float] = deque(maxlen=128)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        # Fixed parse/dispatch cost charged per processed request.  It
        # keeps simulated time moving even when every read fast-fails,
        # so breaker cooldowns always eventually elapse (otherwise a
        # fully-open fleet would freeze the clock and never recover).
        self._request_overhead = max(0.0, request_overhead)
        self._next_request_id = 1
        self._slo = slo
        metrics = self._obs.metrics
        self._queue_depth = metrics.gauge("serving.queue_depth")
        self._queue_wait = metrics.histogram("serving.queue_wait")
        self._latency_hist = metrics.histogram("serving.latency")
        self._request_latency = metrics.histogram("serving.request_latency")
        self._hedges = metrics.counter("serving.hedges")
        self._hedge_wins = metrics.counter("serving.hedge_wins")
        self._failovers = metrics.counter("serving.failovers")
        for node_id in range(index.num_nodes):
            service = NodeIndexService(node_id, index, store, self._obs, fault_plan)
            bus.register(node_service(node_id), service.handle)
            self._breakers[node_service(node_id)] = CircuitBreaker(
                node_service(node_id),
                self._obs,
                failure_threshold=breaker_threshold,
                cooldown=breaker_cooldown,
            )

    # -- introspection ----------------------------------------------------------

    @property
    def obs(self) -> Obs:
        return self._obs

    @property
    def bus(self) -> VinciBus:
        return self._bus

    @property
    def index(self) -> ReplicatedIndex:
        return self._index

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def slo(self) -> SLOMonitor | None:
        return self._slo

    def breaker(self, service: str) -> CircuitBreaker:
        return self._breakers[service]

    def breaker_snapshots(self) -> list[dict[str, Any]]:
        return [self._breakers[name].snapshot() for name in sorted(self._breakers)]

    def probe_node(self, node_id: int) -> bool:
        """Explicitly probe one node's endpoint for re-admission.

        The recovery manager calls this for rejoined nodes (in sorted
        node order, so re-admission is deterministic).  The breaker
        decides whether a probe may go out at all
        (:meth:`CircuitBreaker.probe`); the probe itself is a ``ping``
        through the bus, so it exercises the same fault plan and death
        checks as real traffic.  Returns True when the node answered
        and its breaker closed.
        """
        service = node_service(node_id)
        breaker = self._breakers[service]
        if not breaker.probe():
            return False
        with self._obs.tracer.span(
            "serving.probe", parent=ROOT, node=node_id
        ) as span:
            try:
                self._bus.request(
                    service,
                    with_trace(
                        {"op": "ping", "budget": PROBE_BUDGET},
                        self._obs.tracer.current_context,
                    ),
                )
            except VinciError as exc:
                breaker.record_failure()
                span.set_attribute("result", f"refused: {exc}")
                return False
            breaker.record_success()
            span.set_attribute("result", "admitted")
            return True

    # -- request construction ---------------------------------------------------

    def make_request(
        self,
        op: str,
        payload: dict[str, Any] | None = None,
        *,
        priority: int = 1,
        budget: float = DEFAULT_BUDGET,
    ) -> ServingRequest:
        request = ServingRequest(
            request_id=self._next_request_id,
            op=op,
            payload=dict(payload or {}),
            priority=priority,
            budget=budget,
        )
        self._next_request_id += 1
        return request

    # -- admission control ------------------------------------------------------

    def submit(self, request: ServingRequest) -> dict[str, Any] | None:
        """Admit a request; returns an envelope only when answered now.

        Malformed requests come back immediately as ``error`` envelopes;
        a full queue sheds either the lowest-priority queued request
        (its envelope surfaces on the next :meth:`drain`) or, when
        nothing queued is lower-priority, the incoming request itself.
        Returns ``None`` when the request was queued.
        """
        now = self._obs.clock.now
        self._obs.metrics.counter("serving.requests", op=request.op or "?").inc()
        error, payload = self._validate(request)
        if error is not None:
            code, message = error
            return self._finish_rooted(
                request, STATUS_ERROR, None, started_at=now,
                error_code=code, message=message,
            )
        deadline = Deadline(self._obs.clock, request.budget)
        entry = _QueueEntry(
            request=request, deadline=deadline, submitted_at=now, payload=payload
        )
        if len(self._queue) >= self._queue_limit:
            victim = min(
                self._queue,
                key=lambda e: (e.request.priority, -e.request.request_id),
            )
            if victim.request.priority < request.priority:
                # Shed the lowest-priority queued request to make room.
                self._queue.remove(victim)
                self._pending.append(
                    (
                        victim.request,
                        self._finish_rooted(
                            victim.request,
                            STATUS_SHED,
                            None,
                            started_at=victim.submitted_at,
                            message="shed by higher-priority arrival",
                        ),
                    )
                )
            else:
                return self._finish_rooted(
                    request,
                    STATUS_SHED,
                    None,
                    started_at=now,
                    message="queue full",
                )
        self._queue.append(entry)
        self._queue_depth.set(len(self._queue))
        return None

    def drain(self) -> list[tuple[ServingRequest, dict[str, Any]]]:
        """Serve every queued request FIFO; returns (request, envelope)."""
        out = list(self._pending)
        self._pending.clear()
        while self._queue:
            entry = self._queue.popleft()
            self._queue_depth.set(len(self._queue))
            out.append((entry.request, self._process(entry)))
        return out

    def serve(
        self,
        op: str,
        payload: dict[str, Any] | None = None,
        *,
        priority: int = 1,
        budget: float = DEFAULT_BUDGET,
    ) -> dict[str, Any]:
        """Submit one request and drain it — the single-caller fast path."""
        request = self.make_request(op, payload, priority=priority, budget=budget)
        immediate = self.submit(request)
        if immediate is not None:
            return immediate
        for drained, envelope in self.drain():
            if drained.request_id == request.request_id:
                return envelope
        raise AssertionError("submitted request vanished from the queue")

    # -- validation -------------------------------------------------------------

    def _validate(
        self, request: ServingRequest
    ) -> tuple[tuple[str, str] | None, dict[str, Any]]:
        """Returns ``((error_code, message), {})`` or ``(None, payload)``."""
        if request.op not in OPS:
            return (ERR_BAD_REQUEST, f"unknown op {request.op!r}"), {}
        if not isinstance(request.payload, dict):
            return (ERR_BAD_REQUEST, "payload must be a dict envelope"), {}
        if request.budget <= 0:
            return (ERR_BAD_REQUEST, "budget must be positive"), {}
        payload = dict(request.payload)
        limit = payload.get("limit", _DEFAULT_LIMITS.get(request.op))
        if limit is not None:
            if isinstance(limit, bool) or not isinstance(limit, int) or limit < 0:
                return (
                    ERR_BAD_REQUEST,
                    f"limit must be a non-negative integer, got {limit!r}",
                ), {}
        payload["limit"] = limit
        cursor = payload.get("cursor")
        if cursor is not None:
            if request.op not in ("subjects", "search"):
                return (
                    ERR_BAD_REQUEST,
                    f"op {request.op!r} does not support cursors",
                ), {}
            try:
                body = decode_cursor(cursor)
            except CursorError as exc:
                return (ERR_BAD_CURSOR, str(exc)), {}
            if body.get("o") != request.op:
                return (
                    ERR_BAD_CURSOR,
                    f"cursor is for {body.get('o')!r} results, not {request.op!r}",
                ), {}
        if request.op in ("counts", "sentences"):
            subject = payload.get("subject")
            if not subject or not isinstance(subject, str):
                return (ERR_BAD_REQUEST, "missing required field 'subject'"), {}
            polarity = payload.get("polarity")
            if polarity not in (None, "+", "-"):
                return (
                    ERR_BAD_REQUEST,
                    f"polarity must be '+', '-' or absent, got {polarity!r}",
                ), {}
        if request.op == "search":
            query = payload.get("q")
            if not query or not isinstance(query, str):
                return (ERR_BAD_REQUEST, "missing required field 'q'"), {}
            try:
                payload["query_ast"] = parse_query(query)
            except QueryParseError as exc:
                return (ERR_BAD_REQUEST, f"bad query: {exc}"), {}
        return None, payload

    # -- the serving pipeline ---------------------------------------------------

    def _process(self, entry: _QueueEntry) -> Envelope:
        request, deadline = entry.request, entry.deadline
        # Every request is its own trace: parent=ROOT keeps a drain loop
        # from chaining unrelated requests under whatever span is open.
        with self._obs.tracer.span(
            "serving.request",
            parent=ROOT,
            op=request.op,
            request_id=request.request_id,
        ) as span:
            self._queue_wait.observe(
                self._obs.clock.now - entry.submitted_at, trace_id=span.trace_id
            )
            self._obs.clock.advance(self._request_overhead)
            if deadline.expired:
                envelope = self._finish(
                    request,
                    STATUS_EXPIRED,
                    None,
                    started_at=entry.submitted_at,
                    message="deadline expired while queued",
                )
            else:
                envelope = self._answer(entry)
            span.set_attribute("status", envelope["meta"]["status"])
            return envelope

    def _answer(self, entry: _QueueEntry) -> Envelope:
        request, deadline, payload = entry.request, entry.deadline, entry.payload
        if request.op in ("counts", "sentences"):
            shard_ids = [self._index.subject_shard(payload["subject"])]
        else:
            shard_ids = list(self._index.shard_ids())
        results: dict[int, dict[str, Any]] = {}
        missing: list[int] = []
        hedged = 0
        # Pin the segment set for the whole request: every shard read in
        # this fan-out sees the same version, and compaction cannot fold
        # segments a still-running read depends on (no torn views).
        version = self._index.pin()
        try:
            for shard_id in shard_ids:
                if deadline.expired:
                    break
                read = self._read_shard(
                    shard_id, request.op, payload, deadline, version
                )
                hedged += read["hedged"]
                if read["served"]:
                    results[shard_id] = read["data"]
                else:
                    missing.append(shard_id)
        finally:
            self._index.release(version)
        # The contract: nothing is ever served after its deadline.
        if deadline.expired:
            return self._finish(
                request,
                STATUS_EXPIRED,
                None,
                started_at=entry.submitted_at,
                hedged=hedged,
                message="deadline expired during shard reads",
            )
        data, cursor = self._merge(request.op, payload, shard_ids, results)
        status = STATUS_OK if not missing else STATUS_DEGRADED
        return self._finish(
            request,
            status,
            data,
            started_at=entry.submitted_at,
            missing=missing,
            hedged=hedged,
            cursor=cursor,
        )

    def _read_shard(
        self,
        shard_id: int,
        op: str,
        payload: dict[str, Any],
        deadline: Deadline,
        version: int,
    ) -> dict[str, Any]:
        """One shard read with breaker gating, hedging, and failover."""
        candidates = self._index.replicas_for(shard_id)
        hedged = 0
        with self._obs.tracer.span("serving.shard_read", shard=shard_id, op=op) as span:
            while candidates and not deadline.expired:
                replica = self._next_allowed(candidates)
                if replica is None:
                    break  # every breaker open: fast-fail the whole shard
                candidates.remove(replica)
                latency = self._latency.draw(replica.node_id)
                # Hedged read: a draw above the latency percentile races
                # the next healthy replica; first answer wins, the loser
                # is cancelled (its latency is never charged).
                if latency >= self._current_hedge_threshold():
                    alternate = self._next_allowed(candidates)
                    if alternate is not None:
                        self._hedges.inc()
                        hedged += 1
                        alt_latency = self._latency.draw(alternate.node_id)
                        with self._obs.tracer.span(
                            "serving.hedge",
                            shard=shard_id,
                            primary=replica.node_id,
                            alternate=alternate.node_id,
                        ) as hedge_span:
                            if alt_latency < latency:
                                self._hedge_wins.inc()
                                candidates.remove(alternate)
                                # cancelled, still healthy
                                candidates.insert(0, replica)
                                replica, latency = alternate, alt_latency
                            hedge_span.set_attribute("winner", replica.node_id)
                remaining = deadline.remaining
                if latency >= remaining:
                    # This replica cannot answer inside the budget:
                    # cancel before starting (no time charged, nothing
                    # served late) and let another replica try.
                    self._obs.metrics.counter("serving.cancelled_reads").inc()
                    continue
                self._obs.clock.advance(latency)
                self._latency_window.append(latency)
                self._latency_hist.observe(latency, trace_id=span.trace_id)
                service = node_service(replica.node_id)
                breaker = self._breakers[service]
                try:
                    response = self._bus.request(
                        service,
                        with_trace(
                            {
                                "op": op,
                                "shard": shard_id,
                                "budget": deadline.remaining,
                                "version": version,
                                **{
                                    k: v
                                    for k, v in payload.items()
                                    if k in ("subject", "polarity", "limit", "query_ast")
                                },
                            },
                            self._obs.tracer.current_context,
                        ),
                    )
                except VinciError:
                    breaker.record_failure()
                    self._failovers.inc()
                    continue  # fail over to the next replica
                breaker.record_success()
                span.set_attribute("node", replica.node_id)
                span.set_attribute("hedged", hedged)
                # Node services speak v1 envelopes too; unwrap the data.
                return {
                    "served": True,
                    "data": response["data"],
                    "node": replica.node_id,
                    "hedged": hedged,
                }
            span.set_attribute("missed", True)
            return {"served": False, "data": None, "node": None, "hedged": hedged}

    def _next_allowed(self, candidates: list[ShardReplica]) -> ShardReplica | None:
        """First replica whose breaker admits a request right now.

        Each denial is both counted (``serving.breaker_fastfails``, by
        the breaker) and traced (one ``serving.fastfail`` span), so a
        dump shows exactly which requests an open breaker turned away.
        """
        for replica in candidates:
            service = node_service(replica.node_id)
            if self._breakers[service].allow():
                return replica
            with self._obs.tracer.span("serving.fastfail", service=service):
                pass
        return None

    def _current_hedge_threshold(self) -> float:
        if self._hedge_threshold is not None:
            return self._hedge_threshold
        if len(self._latency_window) < self._hedge_warmup:
            return float("inf")  # no hedging until the percentile is meaningful
        ordered = sorted(self._latency_window)
        index = int(self._hedge_percentile * (len(ordered) - 1))
        return ordered[index]

    # -- merging & envelopes ----------------------------------------------------

    def _merge(
        self,
        op: str,
        payload: dict[str, Any],
        shard_ids: list[int],
        results: dict[int, dict[str, Any]],
    ) -> tuple[dict[str, Any], str | None]:
        """Merge shard answers; returns ``(data, continuation_cursor)``.

        ``subjects`` and ``search`` paginate with opaque cursors keyed on
        the sort position of the last row (not an offset), so a cursor
        minted before a segment merge still resumes correctly after it.
        """
        if op == "counts":
            data = {"subject": payload["subject"], "positive": 0, "negative": 0}
            for shard_data in results.values():
                data["positive"] += shard_data["positive"]
                data["negative"] += shard_data["negative"]
            return data, None
        if op == "sentences":
            rows: list[dict[str, Any]] = []
            for shard_id in shard_ids:
                rows.extend(results.get(shard_id, {}).get("rows", ()))
            return (
                {"subject": payload["subject"], "rows": rows[: payload["limit"]]},
                None,
            )
        if op == "subjects":
            totals: dict[str, int] = {}
            for shard_id in shard_ids:
                for subject, count in results.get(shard_id, {}).get("counts", {}).items():
                    totals[subject] = totals.get(subject, 0) + count
            ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
            page, cursor = paginate(
                ranked,
                limit=payload["limit"],
                cursor=payload.get("cursor"),
                kind="subjects",
                sort_key=lambda kv: (-kv[1], kv[0]),
            )
            return {"subjects": [name for name, _ in page]}, cursor
        if op == "search":
            ids: set[str] = set()
            for shard_id in shard_ids:
                ids.update(results.get(shard_id, {}).get("ids", ()))
            page, cursor = paginate(
                sorted(ids),
                limit=payload["limit"],
                cursor=payload.get("cursor"),
                kind="search",
                sort_key=lambda entity_id: entity_id,
            )
            return {"q": payload["q"], "total": len(ids), "ids": page}, cursor
        raise AssertionError(f"unhandled op {op!r}")  # pragma: no cover

    def _finish(
        self,
        request: ServingRequest,
        status: str,
        data: dict[str, Any] | None,
        *,
        started_at: float,
        missing: list[int] | None = None,
        hedged: int = 0,
        cursor: str | None = None,
        error_code: str | None = None,
        message: str = "",
    ) -> Envelope:
        """Wrap an outcome in the v1 envelope (the only response shape)."""
        self._obs.metrics.counter("serving.responses", status=status).inc()
        current = self._obs.tracer.current
        trace_id = current.trace_id if current is not None else 0
        latency = self._obs.clock.now - started_at
        self._request_latency.observe(latency, trace_id=trace_id)
        if self._slo is not None:
            self._slo.record_request(status, latency)
        meta = make_meta(
            degraded=status == STATUS_DEGRADED,
            missing_shards=missing or [],
            shed=status == STATUS_SHED,
            cursor=cursor,
            status=status,
            code=STATUS_CODES[status],
            request_id=request.request_id,
            op=request.op,
            hedged=hedged,
            latency=latency,
            trace_id=trace_id,
        )
        if status in (STATUS_OK, STATUS_DEGRADED):
            return ok_envelope(data, meta=meta)
        if error_code is None:
            error_code = {
                STATUS_ERROR: ERR_BAD_REQUEST,
                STATUS_SHED: ERR_SHED,
                STATUS_EXPIRED: ERR_DEADLINE,
            }[status]
        return error_envelope(error_code, message, meta=meta)

    def _finish_rooted(
        self,
        request: ServingRequest,
        status: str,
        data: dict[str, Any] | None,
        **kwargs: Any,
    ) -> Envelope:
        """Finish a request answered outside :meth:`_process`.

        Immediate rejections (malformed, shed) never reach the queue, so
        they get their own root ``serving.request`` span here — every
        response, not just the served ones, belongs to exactly one trace.
        """
        with self._obs.tracer.span(
            "serving.request",
            parent=ROOT,
            op=request.op,
            request_id=request.request_id,
        ) as span:
            span.set_attribute("status", status)
            return self._finish(request, status, data, **kwargs)
