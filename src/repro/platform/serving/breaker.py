"""Per-service circuit breakers for the serving front door.

A breaker sits between the router and one Vinci service (one simulated
node's serving endpoint) and keeps a three-state machine:

``closed``     requests flow; consecutive failures are counted;
``open``       requests fast-fail *without touching the bus* (no retry
               budget is consumed) until ``cooldown`` simulated units
               have passed;
``half_open``  one probe request is let through; success closes the
               breaker, failure re-opens it for another cooldown.

Timing comes from the shared :class:`~repro.obs.clock.SimClock`, so
breaker behaviour is as deterministic as everything else under a seeded
chaos plan.  State is mirrored into the metrics registry as the
``serving.breaker_state`` gauge (0 closed / 1 half-open / 2 open) plus
``serving.breaker_opens`` / ``serving.breaker_fastfails`` counters; the
bus-level failure history feeding the breaker is the same stream
:class:`~repro.platform.retry.RetryStats` mirrors, so dashboards can
correlate "retries exhausted" with "breaker opened".
"""

from __future__ import annotations

from ...obs import Obs

#: Breaker states (gauge values in parentheses).
CLOSED = "closed"  # (0)
HALF_OPEN = "half_open"  # (1)
OPEN = "open"  # (2)

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Closed/open/half-open breaker for one named service."""

    __slots__ = (
        "service",
        "failure_threshold",
        "cooldown",
        "_obs",
        "_state",
        "_failures",
        "_opened_at",
        "_gauge",
        "_opens",
        "_fastfails",
        "_probes",
    )

    def __init__(
        self,
        service: str,
        obs: Obs,
        failure_threshold: int = 3,
        cooldown: float = 2.0,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.service = service
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._obs = obs
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._gauge = obs.metrics.gauge("serving.breaker_state", service=service)
        self._opens = obs.metrics.counter("serving.breaker_opens", service=service)
        self._fastfails = obs.metrics.counter(
            "serving.breaker_fastfails", service=service
        )
        self._probes = obs.metrics.counter("serving.breaker_probes", service=service)
        self._gauge.set(_STATE_GAUGE[CLOSED])

    # -- state machine ----------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """May a request be sent now?  May transition open → half-open.

        Returns False (and counts a fast-fail) while the breaker is open
        and the cooldown has not elapsed; in that case the caller must
        not touch the bus at all.
        """
        if self._state == OPEN:
            if self._obs.clock.now - self._opened_at >= self.cooldown:
                self._set_state(HALF_OPEN)
                return True
            self._fastfails.inc()
            return False
        return True

    def probe(self) -> bool:
        """May an *explicit* recovery probe be sent now?

        Unlike :meth:`allow`, which serves request traffic and counts a
        fast-fail against an open breaker, ``probe`` is the recovery
        manager deliberately knocking on a rejoined node's door: while
        the cooldown is still running it returns False without charging
        a fast-fail, and once the cooldown has elapsed it moves the
        breaker to half-open and admits exactly the probe.  The caller
        reports the probe's outcome through :meth:`record_success` /
        :meth:`record_failure` like any other request.
        """
        if self._state == OPEN:
            if self._obs.clock.now - self._opened_at < self.cooldown:
                return False
            self._set_state(HALF_OPEN)
        self._probes.inc()
        return True

    def record_success(self) -> None:
        self._failures = 0
        if self._state != CLOSED:
            self._set_state(CLOSED)

    def record_failure(self) -> None:
        self._failures += 1
        if self._state == HALF_OPEN or self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._opened_at = self._obs.clock.now
        if self._state != OPEN:
            self._opens.inc()
            self._set_state(OPEN)

    def _set_state(self, state: str) -> None:
        self._state = state
        self._gauge.set(_STATE_GAUGE[state])

    def snapshot(self) -> dict[str, object]:
        return {
            "service": self.service,
            "state": self._state,
            "consecutive_failures": self._failures,
            "opens": int(self._opens.value),
            "fastfails": int(self._fastfails.value),
            "probes": int(self._probes.value),
        }
