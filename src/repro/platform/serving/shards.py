"""Replicated index shards for the mode-B serving layer.

The offline half of mode B produces one big :class:`SentimentIndex` and
one big :class:`InvertedIndex`.  At serving scale a single copy is both
a capacity ceiling and a single point of failure, so the serving layer
partitions them:

* the **sentiment index** is sharded by *subject* hash — a per-subject
  ``counts``/``sentences`` query touches exactly one shard;
* the **inverted index** is sharded by *entity* hash — a ``search``
  fans out to every shard and unions the postings.

Each shard is replicated ``replication`` times.  Replica *r* of shard
*s* is placed on simulated node ``(s + r) % num_nodes`` — the same
successor-placement scheme the batch cluster uses — so a
:meth:`FaultPlan.kill_node <repro.platform.faults.FaultPlan.kill_node>`
takes down one replica of several shards but (with R ≥ 2 and a single
death) never every replica of any shard.

Hashing uses md5 like :func:`repro.platform.datastore.default_partitioner`
so shard assignment is stable across processes (Python's builtin hash is
salted per-run).

Since the incremental path landed, every replica holds a **segment
log** (:class:`~repro.platform.segments.ShardSegment`): the mutable base
at version 0 that the offline bulk-build writes into, plus an immutable
slice of every absorbed :class:`~repro.platform.segments.IndexSegment`.
Reads go through :meth:`ShardReplica.view`, which pins a version and
returns a :class:`~repro.platform.segments.ReplicaSnapshot` — the
router pins once per request, so a query never sees a torn segment set
even while absorbs and compactions run mid-flight.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ...core.model import SentimentJudgment
from ..entity import Entity
from ..segments import (
    IndexSegment,
    InvertedSnapshot,
    ReplicaSnapshot,
    SentimentSnapshot,
    ShardSegment,
    merge_segments,
)


def shard_of(key: str, num_shards: int) -> int:
    """Stable md5-based shard assignment for a subject or entity id."""
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % num_shards


def _base_log() -> list[ShardSegment]:
    return [ShardSegment(version=0)]


def segment_docs(segment: ShardSegment) -> int:
    """Transferable size of one segment: documents plus sentiment entries.

    Recovery charges ``TRANSFER_COST_PER_DOC`` per unit shipped, the
    same accounting :meth:`ReplicatedIndex.compact` uses for rewrites.
    """
    return len(segment.inverted.doc_ids) + len(segment.sentiment)


def segment_digest(segment: ShardSegment) -> str:
    """Content digest of one shard segment, for anti-entropy comparison.

    Two segments with equal digests hold the same observable content —
    the digest covers the version, the sorted tombstones, the sorted
    document ids, and every sentiment entry in sorted-subject order.
    It is *content*-based on purpose: distinct Python objects (a base
    built twice, a replayed slice, a per-replica compaction merge) must
    compare equal when they would answer every query identically.
    """
    h = hashlib.md5()
    h.update(str(segment.version).encode("utf-8"))
    for tombstone in sorted(segment.tombstones):
        h.update(b"\x00t")
        h.update(tombstone.encode("utf-8"))
    for doc_id in sorted(segment.inverted.doc_ids):
        h.update(b"\x00d")
        h.update(doc_id.encode("utf-8"))
    for subject, entries in segment.sentiment.items():
        for entry in entries:
            h.update(b"\x00s")
            h.update(
                repr(
                    (subject, entry.entity_id, entry.polarity.value, entry.start, entry.end)
                ).encode("utf-8")
            )
    return h.hexdigest()


@dataclass
class ShardReplica:
    """One replica of one shard, pinned to a simulated node.

    ``segments[0]`` is the mutable base (version 0) that bulk builds
    write into; later entries are immutable absorbed slices.  The
    ``sentiment``/``inverted`` properties are read-only snapshots at the
    latest version — writers must go through :class:`ReplicatedIndex`.
    """

    shard_id: int
    replica: int  # 0 = primary copy, 1.. = replicas
    node_id: int
    segments: list[ShardSegment] = field(default_factory=_base_log)

    @property
    def base(self) -> ShardSegment:
        return self.segments[0]

    @property
    def latest_version(self) -> int:
        return self.segments[-1].version

    def view(self, version: int | None = None) -> ReplicaSnapshot:
        """A snapshot at *version* (default: latest) — no torn reads."""
        pinned = self.latest_version if version is None else version
        return ReplicaSnapshot(pinned, self.segments)

    @property
    def sentiment(self) -> SentimentSnapshot:
        return self.view().sentiment

    @property
    def inverted(self) -> InvertedSnapshot:
        return self.view().inverted

    def describe(self) -> str:
        return f"shard{self.shard_id}/r{self.replica}@node{self.node_id}"

    def version_vector(self) -> tuple[tuple[int, str], ...]:
        """(version, content digest) per segment — the anti-entropy unit.

        Two replicas of a shard are byte-identical for every query iff
        their version vectors are equal; a shared prefix tells the
        recovery manager how much of the log the peer already holds.
        """
        return tuple((s.version, segment_digest(s)) for s in self.segments)


class ReplicatedIndex:
    """The serving layer's sharded, replicated view of the mode-B indexes.

    Writes fan out to every replica of the owning shard — bulk builds
    into the base segment, incremental batches as absorbed segment
    slices.  Reads are the router's business — it picks replicas by
    breaker state and node health, hedges slow ones, and degrades when a
    shard has no live replica left.

    Snapshot consistency: :meth:`pin` fixes the visible version for a
    request; :meth:`compact` only merges segment prefixes at or below
    the lowest active pin, so a pinned reader's segment set never
    changes underneath it.
    """

    def __init__(self, num_shards: int, num_nodes: int, replication: int = 2):
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        if not 1 <= replication <= num_nodes:
            raise ValueError(
                f"replication must lie in [1, {num_nodes}], got {replication}"
            )
        self.num_shards = num_shards
        self.num_nodes = num_nodes
        self.replication = replication
        # replicas[shard_id] is primary-first; placement is successor
        # style: replica r of shard s lives on node (s + r) % num_nodes.
        self._replicas: dict[int, list[ShardReplica]] = {}
        for shard_id in range(num_shards):
            self._replicas[shard_id] = [
                ShardReplica(
                    shard_id=shard_id,
                    replica=r,
                    node_id=(shard_id + r) % num_nodes,
                )
                for r in range(replication)
            ]
        self._version = 0
        self._pins: dict[int, int] = {}
        # node_id -> up?  None means every node is always up (the
        # pre-recovery behaviour); the recovery manager installs a
        # fault-plan-and-clock-aware callable so absorbs and compactions
        # skip replicas whose host is down — that is exactly what makes
        # a rejoining node stale and anti-entropy catch-up meaningful.
        self._liveness: Callable[[int], bool] | None = None

    def set_liveness(self, liveness: Callable[[int], bool] | None) -> None:
        """Install a ``node_id -> up?`` probe consulted by writers."""
        self._liveness = liveness

    def node_up(self, node_id: int) -> bool:
        return self._liveness is None or self._liveness(node_id)

    # -- construction (the offline half of mode B) -------------------------------

    def add_judgment(self, judgment: SentimentJudgment) -> None:
        shard_id = shard_of(judgment.subject_name.lower(), self.num_shards)
        for replica in self._replicas[shard_id]:
            replica.base.sentiment.add_judgment(judgment)

    def add_judgments(self, judgments: Iterable[SentimentJudgment]) -> int:
        count = 0
        for judgment in judgments:
            self.add_judgment(judgment)
            count += 1
        return count

    def add_entity(self, entity: Entity) -> None:
        shard_id = shard_of(entity.entity_id, self.num_shards)
        for replica in self._replicas[shard_id]:
            replica.base.inverted.add_entity(entity)

    def add_entities(self, entities: Iterable[Entity]) -> int:
        count = 0
        for entity in entities:
            self.add_entity(entity)
            count += 1
        return count

    # -- incremental path (segment absorb / snapshot pins / compaction) ----------

    @property
    def current_version(self) -> int:
        return self._version

    def absorb(self, segment: IndexSegment) -> int:
        """Slice one sealed segment across the shards; returns the new version.

        Each shard gets one immutable :class:`ShardSegment` shared by
        all its replicas: sentiment entries routed by subject hash,
        inverted documents by entity-id hash.  Every shard's slice
        carries the segment's *full* tombstone set — a deleted
        document's sentiment entries may live in any subject shard, and
        surplus tombstones mask nothing that exists.

        Replicas hosted on a down node (per :meth:`set_liveness`) do
        *not* receive the slice: a crashed machine cannot accept
        writes, and the gap is what anti-entropy repairs on rejoin.
        """
        version = self._version + 1
        slices = [
            ShardSegment(version=version, tombstones=segment.tombstones)
            for _ in range(self.num_shards)
        ]
        for subject, entries in segment.sentiment.items():
            target = slices[shard_of(subject, self.num_shards)].sentiment
            for entry in entries:
                target.add_entry(entry)
        for entity in segment.entities:
            slices[shard_of(entity.entity_id, self.num_shards)].inverted.add_entity(
                entity
            )
        for shard_id in range(self.num_shards):
            for replica in self._replicas[shard_id]:
                if self.node_up(replica.node_id):
                    replica.segments.append(slices[shard_id])
        self._version = version
        return version

    def pin(self) -> int:
        """Pin the current version for a read; pair with :meth:`release`."""
        version = self._version
        self._pins[version] = self._pins.get(version, 0) + 1
        return version

    def release(self, version: int) -> None:
        count = self._pins.get(version, 0)
        if count <= 1:
            self._pins.pop(version, None)
        else:
            self._pins[version] = count - 1

    def active_pins(self) -> dict[int, int]:
        """Version → outstanding reads (for tests and reports)."""
        return dict(self._pins)

    def compaction_floor(self) -> int:
        """Highest version compaction may merge up to (lowest active pin)."""
        if self._pins:
            return min(self._pins)
        return self._version

    def max_segment_count(self) -> int:
        """Longest replica segment log (the compaction trigger)."""
        return max(
            len(replica.segments)
            for replicas in self._replicas.values()
            for replica in replicas
        )

    def compact(self) -> tuple[int, int]:
        """Merge every replica's mergeable prefix into its base segment.

        Only segments at or below :meth:`compaction_floor` are merged, so
        pinned snapshots keep reading exactly the set they pinned.
        Returns ``(segments_merged, documents_rewritten)`` across all
        replicas — the caller charges simulated cost from the latter.
        """
        floor = self.compaction_floor()
        merged_total = 0
        rewritten = 0
        for replicas in self._replicas.values():
            for replica in replicas:
                if not self.node_up(replica.node_id):
                    # A down node cannot rewrite its own log; its
                    # backlog is resolved by anti-entropy on rejoin.
                    continue
                prefix = [s for s in replica.segments if s.version <= floor]
                if len(prefix) < 2:
                    continue
                merged = merge_segments(prefix)
                rewritten += len(merged.inverted.doc_ids) + len(merged.sentiment)
                replica.segments[: len(prefix)] = [merged]
                merged_total += len(prefix)
        return merged_total, rewritten

    # -- routing -----------------------------------------------------------------

    def subject_shard(self, subject: str) -> int:
        """The single shard answering queries about *subject*."""
        return shard_of(subject.lower(), self.num_shards)

    def replicas_for(self, shard_id: int) -> list[ShardReplica]:
        """All replicas of a shard, primary first."""
        return list(self._replicas[shard_id])

    def replicas_on(self, node_id: int) -> list[ShardReplica]:
        """Every shard replica hosted on one node (shard order)."""
        return [
            replica
            for shard_id in range(self.num_shards)
            for replica in self._replicas[shard_id]
            if replica.node_id == node_id
        ]

    def shard_ids(self) -> range:
        return range(self.num_shards)

    def nodes_for(self, shard_id: int) -> list[int]:
        """Node ids hosting a shard (primary first)."""
        return [replica.node_id for replica in self._replicas[shard_id]]

    def placement(self) -> dict[int, list[int]]:
        """Shard id → hosting node ids, for reports and tests."""
        return {shard_id: self.nodes_for(shard_id) for shard_id in self.shard_ids()}

    def replica_on(self, node_id: int, shard_id: int) -> ShardReplica | None:
        """The replica of *shard_id* hosted on *node_id*, if any.

        Looked up live (not cached) so node services see replicas the
        recovery manager adds or drops while the cluster is serving.
        """
        for replica in self._replicas[shard_id]:
            if replica.node_id == node_id:
                return replica
        return None

    # -- recovery (re-replication and anti-entropy catch-up) ---------------------

    def live_replication(self) -> dict[int, int]:
        """Shard id → replicas currently hosted on *up* nodes."""
        return {
            shard_id: sum(
                1 for replica in replicas if self.node_up(replica.node_id)
            )
            for shard_id, replicas in self._replicas.items()
        }

    def under_replicated(self) -> list[int]:
        """Shards with fewer live replicas than the replication factor."""
        return [
            shard_id
            for shard_id, live in sorted(self.live_replication().items())
            if live < self.replication
        ]

    def add_replica(
        self, shard_id: int, node_id: int, source: ShardReplica
    ) -> tuple[ShardReplica, int]:
        """Materialise an extra replica of a shard from a donor copy.

        The new replica starts as a transfer of the donor's entire
        segment log (immutable slices are shared by reference, exactly
        as absorb shares them).  Returns the replica plus the number of
        documents shipped, which the caller charges at
        ``TRANSFER_COST_PER_DOC``.
        """
        if any(r.node_id == node_id for r in self._replicas[shard_id]):
            raise ValueError(f"node {node_id} already hosts shard {shard_id}")
        replica = ShardReplica(
            shard_id=shard_id,
            replica=max(r.replica for r in self._replicas[shard_id]) + 1,
            node_id=node_id,
            segments=list(source.segments),
        )
        self._replicas[shard_id].append(replica)
        return replica, sum(segment_docs(s) for s in source.segments)

    def drop_replica(self, shard_id: int, node_id: int) -> ShardReplica:
        """Retire the replica of *shard_id* on *node_id* (recovery only)."""
        for index, replica in enumerate(self._replicas[shard_id]):
            if replica.node_id == node_id:
                return self._replicas[shard_id].pop(index)
        raise ValueError(f"node {node_id} hosts no replica of shard {shard_id}")

    def sync_replica(self, target: ShardReplica, source: ShardReplica) -> int:
        """Anti-entropy: make *target*'s segment log equal *source*'s.

        Version vectors are compared pairwise; when the target's log is
        a digest-exact prefix of the source's, only the missing suffix
        is shipped.  Any divergence (the source compacted while the
        target was down, or the target lost its log entirely) falls
        back to a full transfer.  Returns the documents shipped — zero
        when the replicas already agree.
        """
        source_vector = source.version_vector()
        target_vector = target.version_vector()
        if target_vector == source_vector:
            return 0
        common = 0
        for ours, theirs in zip(target_vector, source_vector):
            if ours != theirs:
                break
            common += 1
        if common == len(target_vector):
            # Clean suffix catch-up: ship only what the target missed.
            shipped = source.segments[common:]
            target.segments.extend(shipped)
        else:
            # Divergent logs: full resync from the donor.
            shipped = source.segments
            target.segments[:] = list(source.segments)
        return sum(segment_docs(s) for s in shipped)
