"""Replicated index shards for the mode-B serving layer.

The offline half of mode B produces one big :class:`SentimentIndex` and
one big :class:`InvertedIndex`.  At serving scale a single copy is both
a capacity ceiling and a single point of failure, so the serving layer
partitions them:

* the **sentiment index** is sharded by *subject* hash — a per-subject
  ``counts``/``sentences`` query touches exactly one shard;
* the **inverted index** is sharded by *entity* hash — a ``search``
  fans out to every shard and unions the postings.

Each shard is replicated ``replication`` times.  Replica *r* of shard
*s* is placed on simulated node ``(s + r) % num_nodes`` — the same
successor-placement scheme the batch cluster uses — so a
:meth:`FaultPlan.kill_node <repro.platform.faults.FaultPlan.kill_node>`
takes down one replica of several shards but (with R ≥ 2 and a single
death) never every replica of any shard.

Hashing uses md5 like :func:`repro.platform.datastore.default_partitioner`
so shard assignment is stable across processes (Python's builtin hash is
salted per-run).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from ...core.model import SentimentJudgment
from ..entity import Entity
from ..indexer import InvertedIndex, SentimentIndex


def shard_of(key: str, num_shards: int) -> int:
    """Stable md5-based shard assignment for a subject or entity id."""
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % num_shards


@dataclass
class ShardReplica:
    """One replica of one shard, pinned to a simulated node."""

    shard_id: int
    replica: int  # 0 = primary copy, 1.. = replicas
    node_id: int
    sentiment: SentimentIndex = field(default_factory=SentimentIndex)
    inverted: InvertedIndex = field(default_factory=InvertedIndex)

    def describe(self) -> str:
        return f"shard{self.shard_id}/r{self.replica}@node{self.node_id}"


class ReplicatedIndex:
    """The serving layer's sharded, replicated view of the mode-B indexes.

    Writes (index builds) fan out to every replica of the owning shard;
    reads are the router's business — it picks replicas by breaker state
    and node health, hedges slow ones, and degrades when a shard has no
    live replica left.
    """

    def __init__(self, num_shards: int, num_nodes: int, replication: int = 2):
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        if not 1 <= replication <= num_nodes:
            raise ValueError(
                f"replication must lie in [1, {num_nodes}], got {replication}"
            )
        self.num_shards = num_shards
        self.num_nodes = num_nodes
        self.replication = replication
        # replicas[shard_id] is primary-first; placement is successor
        # style: replica r of shard s lives on node (s + r) % num_nodes.
        self._replicas: dict[int, list[ShardReplica]] = {}
        for shard_id in range(num_shards):
            self._replicas[shard_id] = [
                ShardReplica(
                    shard_id=shard_id,
                    replica=r,
                    node_id=(shard_id + r) % num_nodes,
                )
                for r in range(replication)
            ]

    # -- construction (the offline half of mode B) -------------------------------

    def add_judgment(self, judgment: SentimentJudgment) -> None:
        shard_id = shard_of(judgment.subject_name.lower(), self.num_shards)
        for replica in self._replicas[shard_id]:
            replica.sentiment.add_judgment(judgment)

    def add_judgments(self, judgments: Iterable[SentimentJudgment]) -> int:
        count = 0
        for judgment in judgments:
            self.add_judgment(judgment)
            count += 1
        return count

    def add_entity(self, entity: Entity) -> None:
        shard_id = shard_of(entity.entity_id, self.num_shards)
        for replica in self._replicas[shard_id]:
            replica.inverted.add_entity(entity)

    def add_entities(self, entities: Iterable[Entity]) -> int:
        count = 0
        for entity in entities:
            self.add_entity(entity)
            count += 1
        return count

    # -- routing -----------------------------------------------------------------

    def subject_shard(self, subject: str) -> int:
        """The single shard answering queries about *subject*."""
        return shard_of(subject.lower(), self.num_shards)

    def replicas_for(self, shard_id: int) -> list[ShardReplica]:
        """All replicas of a shard, primary first."""
        return list(self._replicas[shard_id])

    def replicas_on(self, node_id: int) -> list[ShardReplica]:
        """Every shard replica hosted on one node (shard order)."""
        return [
            replica
            for shard_id in range(self.num_shards)
            for replica in self._replicas[shard_id]
            if replica.node_id == node_id
        ]

    def shard_ids(self) -> range:
        return range(self.num_shards)

    def nodes_for(self, shard_id: int) -> list[int]:
        """Node ids hosting a shard (primary first)."""
        return [replica.node_id for replica in self._replicas[shard_id]]

    def placement(self) -> dict[int, list[int]]:
        """Shard id → hosting node ids, for reports and tests."""
        return {shard_id: self.nodes_for(shard_id) for shard_id in self.shard_ids()}
