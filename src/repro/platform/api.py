"""The versioned service API: one envelope schema for every response.

Every client-facing response in the platform — the hosted application
services (:mod:`.services`), the serving front door
(:mod:`.serving.router`), and ``repro serve --json`` — is one of two
shapes, both carrying ``api_version`` so clients can dispatch on schema:

success::

    {"api_version": "v1", "ok": true,  "data": {...}, "error": null,
     "meta": {"degraded": false, "missing_shards": [], "shed": false,
              "cursor": null, ...}}

failure::

    {"api_version": "v1", "ok": false, "data": null,
     "error": {"code": "bad_request", "message": "..."},
     "meta": {...}}

``meta`` always carries the four reserved keys (``degraded``,
``missing_shards``, ``shed``, ``cursor``); producers may add extra keys
(the router adds ``status``/``code``/``latency`` and friends) but may
never remove the reserved ones.  Lint rule PLAT003 enforces that
handlers build envelopes only through the constructors here — raw
``{"ok": ...}`` dict literals outside this module are a finding.

Cursors (:func:`encode_cursor` / :func:`decode_cursor`) are opaque to
clients but deterministic: the same query position always encodes to the
same string, and a cursor keys on the *sort position* of the last item
served (not an offset), so it stays valid across segment merges and
compactions that do not change the ranking.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any

#: The one schema version currently served.
API_VERSION = "v1"

#: Envelope alias used in handler signatures (PLAT001 accepts it).
Envelope = dict[str, Any]

#: Machine-readable error codes (``error.code``).
ERR_BAD_REQUEST = "bad_request"
ERR_NOT_FOUND = "not_found"
ERR_BAD_CURSOR = "bad_cursor"
ERR_SHED = "shed"
ERR_DEADLINE = "deadline_expired"
ERR_UNAVAILABLE = "unavailable"

ERROR_CODES = frozenset(
    {
        ERR_BAD_REQUEST,
        ERR_NOT_FOUND,
        ERR_BAD_CURSOR,
        ERR_SHED,
        ERR_DEADLINE,
        ERR_UNAVAILABLE,
    }
)

#: Keys every ``meta`` object carries (producers may add more).
META_KEYS = ("degraded", "missing_shards", "shed", "cursor")

#: Top-level envelope keys, in canonical order.
ENVELOPE_KEYS = ("api_version", "ok", "data", "error", "meta")


class CursorError(ValueError):
    """An opaque cursor failed to decode (truncated, tampered, foreign)."""


def make_meta(
    *,
    degraded: bool = False,
    missing_shards: list[int] | tuple[int, ...] = (),
    shed: bool = False,
    cursor: str | None = None,
    **extra: Any,
) -> dict[str, Any]:
    """A ``meta`` object with the reserved keys always present."""
    meta: dict[str, Any] = {
        "degraded": bool(degraded),
        "missing_shards": sorted(missing_shards),
        "shed": bool(shed),
        "cursor": cursor,
    }
    meta.update(extra)
    return meta


def ok_envelope(data: Any, *, meta: dict[str, Any] | None = None) -> Envelope:
    """A v1 success envelope around *data*."""
    return {
        "api_version": API_VERSION,
        "ok": True,
        "data": data,
        "error": None,
        "meta": meta if meta is not None else make_meta(),
    }


def error_envelope(
    code: str, message: str, *, meta: dict[str, Any] | None = None
) -> Envelope:
    """A v1 failure envelope.

    Malformed *requests* are the client's fault, not the service's: they
    come back as envelopes instead of raising through the bus (which
    would consume retry budget on a call that can never succeed).
    """
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}; add it to api.ERROR_CODES")
    return {
        "api_version": API_VERSION,
        "ok": False,
        "data": None,
        "error": {"code": code, "message": str(message)},
        "meta": meta if meta is not None else make_meta(),
    }


def validate_envelope(obj: Any) -> list[str]:
    """Schema violations in *obj* (empty list = a valid v1 envelope)."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"envelope must be a dict, got {type(obj).__name__}"]
    missing = [k for k in ENVELOPE_KEYS if k not in obj]
    if missing:
        problems.append(f"missing envelope keys: {missing}")
    if obj.get("api_version") != API_VERSION:
        problems.append(f"api_version must be {API_VERSION!r}, got {obj.get('api_version')!r}")
    ok = obj.get("ok")
    if not isinstance(ok, bool):
        problems.append(f"ok must be a bool, got {ok!r}")
    error = obj.get("error")
    if ok is True:
        if error is not None:
            problems.append("ok envelope must carry error: null")
    elif ok is False:
        if not isinstance(error, dict):
            problems.append("failure envelope must carry an error object")
        else:
            if error.get("code") not in ERROR_CODES:
                problems.append(f"unknown error code {error.get('code')!r}")
            if not isinstance(error.get("message"), str):
                problems.append("error.message must be a string")
        if obj.get("data") is not None:
            problems.append("failure envelope must carry data: null")
    meta = obj.get("meta")
    if not isinstance(meta, dict):
        problems.append(f"meta must be a dict, got {type(meta).__name__}")
    else:
        for key in META_KEYS:
            if key not in meta:
                problems.append(f"meta missing reserved key {key!r}")
        if "degraded" in meta and not isinstance(meta["degraded"], bool):
            problems.append("meta.degraded must be a bool")
        if "shed" in meta and not isinstance(meta["shed"], bool):
            problems.append("meta.shed must be a bool")
        if "missing_shards" in meta and not isinstance(meta["missing_shards"], list):
            problems.append("meta.missing_shards must be a list")
        cursor = meta.get("cursor")
        if cursor is not None and not isinstance(cursor, str):
            problems.append("meta.cursor must be a string or null")
    return problems


def is_envelope(obj: Any) -> bool:
    """True when *obj* validates as a v1 envelope."""
    return not validate_envelope(obj)


# -- opaque cursors -------------------------------------------------------------


def encode_cursor(payload: dict[str, Any]) -> str:
    """Serialise a cursor payload to an opaque URL-safe token.

    Deterministic: the JSON body is key-sorted and compact, so equal
    payloads always produce equal tokens (the byte-identical-report
    gates depend on this).
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return base64.urlsafe_b64encode(body.encode("utf-8")).decode("ascii").rstrip("=")


def decode_cursor(token: str) -> dict[str, Any]:
    """Decode an opaque cursor token; raises :class:`CursorError` when invalid."""
    if not isinstance(token, str) or not token:
        raise CursorError(f"cursor must be a non-empty string, got {token!r}")
    padded = token + "=" * (-len(token) % 4)
    try:
        body = base64.urlsafe_b64decode(padded.encode("ascii"))
        payload = json.loads(body.decode("utf-8"))
    except (binascii.Error, UnicodeDecodeError, ValueError) as exc:
        raise CursorError(f"undecodable cursor {token!r}") from exc
    if not isinstance(payload, dict):
        raise CursorError(f"cursor body must be an object, got {payload!r}")
    return payload


def paginate(
    items: list[Any],
    *,
    limit: int | None,
    cursor: str | None,
    kind: str,
    sort_key: Any,
) -> tuple[list[Any], str | None]:
    """One page of an ordered result list plus the continuation cursor.

    *items* must already be in final deterministic order; *sort_key*
    maps an item to its comparable position key.  The cursor pins the
    sort key of the last item served, so the next page is "everything
    strictly after that key" — an index-free contract that survives
    segment merges and compactions (which never reorder equal keys).
    ``None`` is returned for the cursor when the page exhausts the list.
    """
    start = 0
    if cursor is not None:
        payload = decode_cursor(cursor)
        if payload.get("o") != kind:
            raise CursorError(
                f"cursor is for {payload.get('o')!r} results, not {kind!r}"
            )
        if "k" not in payload:
            raise CursorError("cursor missing position key")
        last_key = payload["k"]
        # JSON round-trips tuples as lists; normalise for comparison.
        normalised = _as_key(last_key)
        while start < len(items) and _as_key(sort_key(items[start])) <= normalised:
            start += 1
    if limit is None:
        page = items[start:]
    else:
        page = items[start : start + limit]
    next_cursor: str | None = None
    if page and start + len(page) < len(items):
        next_cursor = encode_cursor({"o": kind, "k": _as_key(sort_key(page[-1]))})
    return page, next_cursor


def _as_key(key: Any) -> Any:
    """Normalise tuple/list sort keys so JSON round-trips compare equal."""
    if isinstance(key, (list, tuple)):
        return [_as_key(part) for part in key]
    return key
