"""Vinci: the in-process service bus.

"The nodes in the cluster communicate using a Web-service style,
lightweight, high-speed communication protocol called Vinci, a derivative
of SOAP."

This simulation keeps Vinci's programming model — named services
exchanging small request/response documents — without sockets: handlers
register under a service name, callers send dict payloads, and the bus
records traffic so the platform benchmarks can report message counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

Handler = Callable[[dict[str, Any]], dict[str, Any]]


class VinciError(RuntimeError):
    """Service-level failure (unknown service or handler exception)."""


@dataclass
class ServiceRecord:
    """Registered service plus its traffic counters."""

    name: str
    handler: Handler
    requests: int = 0
    failures: int = 0


@dataclass
class Envelope:
    """One request/response exchange, as recorded by the bus trace."""

    service: str
    request: dict[str, Any]
    response: dict[str, Any] | None
    ok: bool


class VinciBus:
    """The service registry and request router."""

    def __init__(self, trace_limit: int = 1000):
        self._services: dict[str, ServiceRecord] = {}
        self._trace: list[Envelope] = []
        self._trace_limit = trace_limit

    # -- registration -----------------------------------------------------------------

    def register(self, name: str, handler: Handler) -> None:
        """Register (or replace) a service handler."""
        if not name:
            raise ValueError("service name must be non-empty")
        self._services[name] = ServiceRecord(name=name, handler=handler)

    def unregister(self, name: str) -> None:
        self._services.pop(name, None)

    def services(self) -> list[str]:
        return sorted(self._services)

    def __contains__(self, name: str) -> bool:
        return name in self._services

    # -- requests ----------------------------------------------------------------------

    def request(self, service: str, payload: dict[str, Any] | None = None) -> dict[str, Any]:
        """Send a request; raises :class:`VinciError` on failure."""
        payload = payload or {}
        record = self._services.get(service)
        if record is None:
            self._record(Envelope(service, payload, None, ok=False))
            raise VinciError(f"no such service: {service!r}")
        record.requests += 1
        try:
            response = record.handler(payload)
        except VinciError:
            record.failures += 1
            self._record(Envelope(service, payload, None, ok=False))
            raise
        except Exception as exc:
            record.failures += 1
            self._record(Envelope(service, payload, None, ok=False))
            raise VinciError(f"service {service!r} failed: {exc}") from exc
        if not isinstance(response, dict):
            record.failures += 1
            raise VinciError(f"service {service!r} returned a non-document response")
        self._record(Envelope(service, payload, response, ok=True))
        return response

    # -- introspection -------------------------------------------------------------------

    def stats(self) -> dict[str, dict[str, int]]:
        return {
            name: {"requests": r.requests, "failures": r.failures}
            for name, r in sorted(self._services.items())
        }

    def trace(self) -> list[Envelope]:
        return list(self._trace)

    def _record(self, envelope: Envelope) -> None:
        self._trace.append(envelope)
        if len(self._trace) > self._trace_limit:
            del self._trace[: len(self._trace) - self._trace_limit]
