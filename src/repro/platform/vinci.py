"""Vinci: the in-process service bus.

"The nodes in the cluster communicate using a Web-service style,
lightweight, high-speed communication protocol called Vinci, a derivative
of SOAP."

This simulation keeps Vinci's programming model — named services
exchanging small request/response documents — without sockets: handlers
register under a service name, callers send dict payloads, and the bus
records traffic so the platform benchmarks can report message counts.

Observability
-------------
Every bus carries an :class:`~repro.obs.Obs` context.  Per-service
request/failure counts live in its metrics registry (``vinci.requests`` /
``vinci.failures`` series — :meth:`VinciBus.stats` is a view over them,
as is :class:`~repro.platform.retry.RetryStats`), and when tracing is
enabled each logical request becomes a ``vinci.request`` span with one
``vinci.attempt`` child per try, carrying attempt numbers and injected
fault kinds.  The envelope trace is an explicit ring buffer: the newest
``trace_limit`` exchanges are kept and the number evicted is surfaced in
``stats()["_trace"]["dropped"]`` and the ``vinci.trace_dropped`` counter.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from ..obs import Obs
from ..obs.context import extract_context
from .faults import TIMEOUT, FaultPlan
from .retry import RetryPolicy, RetryStats

Handler = Callable[[dict[str, Any]], dict[str, Any]]

#: Pseudo-service key under which ``stats()`` reports trace-buffer state.
TRACE_STATS_KEY = "_trace"


class VinciError(RuntimeError):
    """Service-level failure (unknown service or handler exception)."""


class VinciTimeout(VinciError):
    """An injected service timeout (the handler never ran)."""


class ServiceRecord:
    """Registered service; its traffic counters live in the metrics registry."""

    __slots__ = ("name", "handler", "_requests", "_failures")

    def __init__(self, name: str, handler: Handler, obs: Obs):
        self.name = name
        self.handler = handler
        self._requests = obs.metrics.counter("vinci.requests", service=name)
        self._failures = obs.metrics.counter("vinci.failures", service=name)

    @property
    def requests(self) -> int:
        return int(self._requests.value)

    @property
    def failures(self) -> int:
        return int(self._failures.value)

    def mark_request(self) -> None:
        self._requests.inc()

    def mark_failure(self) -> None:
        self._failures.inc()


@dataclass
class Envelope:
    """One request/response exchange, as recorded by the bus trace.

    ``attempt`` is 1 for a first try and counts up across retries of the
    same logical request; ``fault`` names an injected fault kind when
    the exchange failed because of one ("error", "timeout").
    ``trace_id`` attributes the exchange to the caller's trace when the
    payload threaded a :class:`~repro.obs.context.TraceContext` (0 when
    untraced), so every recorded attempt maps onto exactly one
    ``vinci.attempt`` span in the dump.
    """

    service: str
    request: dict[str, Any]
    response: dict[str, Any] | None
    ok: bool
    attempt: int = 1
    fault: str = ""
    trace_id: int = 0


class VinciBus:
    """The service registry and request router.

    A bus optionally carries a :class:`~repro.platform.retry.RetryPolicy`
    (transient failures are retried with simulated-cost backoff) and a
    :class:`~repro.platform.faults.FaultPlan` (scheduled faults fire
    before the handler runs).  Without either, behaviour is identical to
    the original fail-fast bus.
    """

    def __init__(
        self,
        trace_limit: int = 1000,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        obs: Obs | None = None,
    ):
        if trace_limit < 0:
            raise ValueError("trace_limit must be non-negative")
        self._obs = obs if obs is not None else Obs.default()
        self._services: dict[str, ServiceRecord] = {}
        self._trace: deque[Envelope] = deque(maxlen=trace_limit or None)
        self._trace_limit = trace_limit
        self._dropped = self._obs.metrics.counter("vinci.trace_dropped")
        self._retry_policy = retry_policy
        self._fault_plan = fault_plan
        self._retry_stats = RetryStats(self._obs.metrics)
        # Jitter stream: seeded from the plan so runs are reproducible.
        self._rng = random.Random(fault_plan.seed if fault_plan is not None else 0)

    # -- registration -----------------------------------------------------------------

    def register(self, name: str, handler: Handler) -> None:
        """Register (or replace) a service handler."""
        if not name:
            raise ValueError("service name must be non-empty")
        self._services[name] = ServiceRecord(name, handler, self._obs)

    def unregister(self, name: str) -> None:
        self._services.pop(name, None)

    def services(self) -> list[str]:
        return sorted(self._services)

    def __contains__(self, name: str) -> bool:
        return name in self._services

    # -- requests ----------------------------------------------------------------------

    def request(self, service: str, payload: dict[str, Any] | None = None) -> dict[str, Any]:
        """Send a request; raises :class:`VinciError` on failure.

        An unknown service is a permanent error and is never retried.
        Handler failures, injected faults, and malformed responses are
        transient: with a retry policy the bus re-sends, charging the
        policy's backoff into :attr:`retry_stats` in simulated cost
        units, until an attempt succeeds or attempts run out.
        """
        payload = payload or {}
        tracer = self._obs.tracer
        # Join the caller's trace when the payload threads a context
        # (the serving router and cluster coordinator both do); without
        # one the span nests under whatever span is open on this tracer.
        ctx = extract_context(payload)
        with tracer.span("vinci.request", parent=ctx, service=service) as span:
            trace_id = span.trace_id
            record = self._services.get(service)
            if record is None:
                self._record(
                    Envelope(service, payload, None, ok=False, trace_id=trace_id)
                )
                raise VinciError(f"no such service: {service!r}")
            policy = self._retry_policy
            attempt = 0
            while True:
                attempt += 1
                try:
                    response = self._attempt(record, payload, attempt, trace_id)
                except VinciError:
                    if policy is not None and policy.allows_retry(attempt):
                        cost = policy.backoff(attempt, self._rng)
                        self._retry_stats.record_retry(service, cost)
                        self._obs.clock.advance(cost)
                        continue
                    self._retry_stats.record_exhausted()
                    span.set_attribute("attempts", attempt)
                    raise
                if attempt > 1:
                    self._retry_stats.record_recovered()
                span.set_attribute("attempts", attempt)
                return response

    def _attempt(
        self,
        record: ServiceRecord,
        payload: dict[str, Any],
        attempt: int,
        trace_id: int = 0,
    ) -> dict[str, Any]:
        """One try at one service: inject faults, run handler, validate."""
        service = record.name
        record.mark_request()
        with self._obs.tracer.span(
            "vinci.attempt", service=service, attempt=attempt
        ) as span:
            fault = (
                self._fault_plan.consume_service_fault(service)
                if self._fault_plan is not None
                else None
            )
            if fault is not None:
                record.mark_failure()
                span.set_attribute("fault", fault)
                self._record(
                    Envelope(
                        service, payload, None,
                        ok=False, attempt=attempt, fault=fault, trace_id=trace_id,
                    )
                )
                if fault == TIMEOUT:
                    raise VinciTimeout(f"service {service!r} timed out (injected)")
                raise VinciError(f"service {service!r} failed (injected)")
            try:
                response = record.handler(payload)
            except VinciError:
                record.mark_failure()
                self._record(
                    Envelope(
                        service, payload, None,
                        ok=False, attempt=attempt, trace_id=trace_id,
                    )
                )
                raise
            except Exception as exc:
                record.mark_failure()
                self._record(
                    Envelope(
                        service, payload, None,
                        ok=False, attempt=attempt, trace_id=trace_id,
                    )
                )
                raise VinciError(f"service {service!r} failed: {exc}") from exc
            if not isinstance(response, dict):
                record.mark_failure()
                self._record(
                    Envelope(
                        service, payload, None,
                        ok=False, attempt=attempt, trace_id=trace_id,
                    )
                )
                raise VinciError(f"service {service!r} returned a non-document response")
            self._record(
                Envelope(
                    service, payload, response,
                    ok=True, attempt=attempt, trace_id=trace_id,
                )
            )
            return response

    # -- introspection -------------------------------------------------------------------

    @property
    def obs(self) -> Obs:
        return self._obs

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-service traffic plus the ``_trace`` ring-buffer entry.

        Service entries are views over the ``vinci.requests`` /
        ``vinci.failures`` metric series.  The reserved ``_trace`` key
        (zero-filled ``requests``/``failures`` so aggregations over
        values stay correct) reports the ring buffer: envelopes
        currently held, envelopes dropped, and the configured limit.
        """
        out = {
            name: {"requests": r.requests, "failures": r.failures}
            for name, r in sorted(self._services.items())
        }
        out[TRACE_STATS_KEY] = {
            "requests": 0,
            "failures": 0,
            "recorded": len(self._trace),
            "dropped": self.trace_dropped,
            "limit": self._trace_limit,
        }
        return out

    def trace(self) -> list[Envelope]:
        """The newest ``trace_limit`` envelopes, oldest first."""
        return list(self._trace)

    @property
    def trace_dropped(self) -> int:
        """Envelopes evicted from the ring buffer so far."""
        return int(self._dropped.value)

    @property
    def retry_stats(self) -> RetryStats:
        return self._retry_stats

    @property
    def fault_plan(self) -> FaultPlan | None:
        return self._fault_plan

    @property
    def retry_policy(self) -> RetryPolicy | None:
        return self._retry_policy

    def _record(self, envelope: Envelope) -> None:
        if self._trace_limit == 0:
            self._dropped.inc()
            return
        if len(self._trace) == self._trace_limit:
            # deque(maxlen=...) evicts the oldest envelope on append; the
            # eviction is counted here so it is never silent.
            self._dropped.inc()
        self._trace.append(envelope)
