"""Vinci: the in-process service bus.

"The nodes in the cluster communicate using a Web-service style,
lightweight, high-speed communication protocol called Vinci, a derivative
of SOAP."

This simulation keeps Vinci's programming model — named services
exchanging small request/response documents — without sockets: handlers
register under a service name, callers send dict payloads, and the bus
records traffic so the platform benchmarks can report message counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from .faults import TIMEOUT, FaultPlan
from .retry import RetryPolicy, RetryStats

Handler = Callable[[dict[str, Any]], dict[str, Any]]


class VinciError(RuntimeError):
    """Service-level failure (unknown service or handler exception)."""


class VinciTimeout(VinciError):
    """An injected service timeout (the handler never ran)."""


@dataclass
class ServiceRecord:
    """Registered service plus its traffic counters."""

    name: str
    handler: Handler
    requests: int = 0
    failures: int = 0


@dataclass
class Envelope:
    """One request/response exchange, as recorded by the bus trace.

    ``attempt`` is 1 for a first try and counts up across retries of the
    same logical request; ``fault`` names an injected fault kind when
    the exchange failed because of one ("error", "timeout").
    """

    service: str
    request: dict[str, Any]
    response: dict[str, Any] | None
    ok: bool
    attempt: int = 1
    fault: str = ""


class VinciBus:
    """The service registry and request router.

    A bus optionally carries a :class:`~repro.platform.retry.RetryPolicy`
    (transient failures are retried with simulated-cost backoff) and a
    :class:`~repro.platform.faults.FaultPlan` (scheduled faults fire
    before the handler runs).  Without either, behaviour is identical to
    the original fail-fast bus.
    """

    def __init__(
        self,
        trace_limit: int = 1000,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self._services: dict[str, ServiceRecord] = {}
        self._trace: list[Envelope] = []
        self._trace_limit = trace_limit
        self._retry_policy = retry_policy
        self._fault_plan = fault_plan
        self._retry_stats = RetryStats()
        # Jitter stream: seeded from the plan so runs are reproducible.
        self._rng = random.Random(fault_plan.seed if fault_plan is not None else 0)

    # -- registration -----------------------------------------------------------------

    def register(self, name: str, handler: Handler) -> None:
        """Register (or replace) a service handler."""
        if not name:
            raise ValueError("service name must be non-empty")
        self._services[name] = ServiceRecord(name=name, handler=handler)

    def unregister(self, name: str) -> None:
        self._services.pop(name, None)

    def services(self) -> list[str]:
        return sorted(self._services)

    def __contains__(self, name: str) -> bool:
        return name in self._services

    # -- requests ----------------------------------------------------------------------

    def request(self, service: str, payload: dict[str, Any] | None = None) -> dict[str, Any]:
        """Send a request; raises :class:`VinciError` on failure.

        An unknown service is a permanent error and is never retried.
        Handler failures, injected faults, and malformed responses are
        transient: with a retry policy the bus re-sends, charging the
        policy's backoff into :attr:`retry_stats` in simulated cost
        units, until an attempt succeeds or attempts run out.
        """
        payload = payload or {}
        record = self._services.get(service)
        if record is None:
            self._record(Envelope(service, payload, None, ok=False))
            raise VinciError(f"no such service: {service!r}")
        policy = self._retry_policy
        attempt = 0
        while True:
            attempt += 1
            try:
                response = self._attempt(record, payload, attempt)
            except VinciError:
                if policy is not None and policy.allows_retry(attempt):
                    cost = policy.backoff(attempt, self._rng)
                    self._retry_stats.record_retry(service, cost)
                    continue
                self._retry_stats.exhausted += 1
                raise
            if attempt > 1:
                self._retry_stats.recovered += 1
            return response

    def _attempt(
        self, record: ServiceRecord, payload: dict[str, Any], attempt: int
    ) -> dict[str, Any]:
        """One try at one service: inject faults, run handler, validate."""
        service = record.name
        record.requests += 1
        fault = (
            self._fault_plan.consume_service_fault(service)
            if self._fault_plan is not None
            else None
        )
        if fault is not None:
            record.failures += 1
            self._record(Envelope(service, payload, None, ok=False, attempt=attempt, fault=fault))
            if fault == TIMEOUT:
                raise VinciTimeout(f"service {service!r} timed out (injected)")
            raise VinciError(f"service {service!r} failed (injected)")
        try:
            response = record.handler(payload)
        except VinciError:
            record.failures += 1
            self._record(Envelope(service, payload, None, ok=False, attempt=attempt))
            raise
        except Exception as exc:
            record.failures += 1
            self._record(Envelope(service, payload, None, ok=False, attempt=attempt))
            raise VinciError(f"service {service!r} failed: {exc}") from exc
        if not isinstance(response, dict):
            record.failures += 1
            self._record(Envelope(service, payload, None, ok=False, attempt=attempt))
            raise VinciError(f"service {service!r} returned a non-document response")
        self._record(Envelope(service, payload, response, ok=True, attempt=attempt))
        return response

    # -- introspection -------------------------------------------------------------------

    def stats(self) -> dict[str, dict[str, int]]:
        return {
            name: {"requests": r.requests, "failures": r.failures}
            for name, r in sorted(self._services.items())
        }

    def trace(self) -> list[Envelope]:
        return list(self._trace)

    @property
    def retry_stats(self) -> RetryStats:
        return self._retry_stats

    @property
    def fault_plan(self) -> FaultPlan | None:
        return self._fault_plan

    @property
    def retry_policy(self) -> RetryPolicy | None:
        return self._retry_policy

    def _record(self, envelope: Envelope) -> None:
        self._trace.append(envelope)
        if len(self._trace) > self._trace_limit:
            del self._trace[: len(self._trace) - self._trace_limit]
