"""Deterministic fault injection for the simulated platform.

The paper's WebFountain ran on a 500-node shared-nothing cluster where
node loss and service failure were routine operational facts, not
exceptional ones.  This module supplies the *fault side* of that story
for the simulation: a :class:`FaultPlan` is a seeded, fully
deterministic schedule of failures that the bus, store, and cluster
consult at well-defined points.  There is no wall-clock randomness —
the same seed always produces the same faults in the same order, which
is what makes the chaos tests (:mod:`repro.platform.chaos`)
reproducible assertions instead of flaky roulette.

Fault kinds
-----------
``service``   — the next K requests to a named Vinci service fail
                (``error``) or time out (``timeout``) before the
                handler runs;
``node``      — a cluster node dies after completing N partitions of
                the current run (N=0: dead on arrival); a death may
                carry a scheduled *restart*: from that simulated time
                on the node is back up and must be caught up by the
                recovery machinery (:mod:`repro.platform.recovery`);
``write``     — the next K writes to a store partition are dropped
                on the floor, or corrupted (content garbled, existing
                annotations discarded, ``corrupted`` metadata set).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .entity import Entity

#: Service fault kinds.
FAIL = "error"
TIMEOUT = "timeout"

#: Write fault kinds.
DROP = "drop"
CORRUPT = "corrupt"

#: Deterministic corruption modes, cycled per corrupted write.  They are
#: chosen to exercise downstream robustness: empty documents, documents
#: with no alphabetic tokens, reversed text, and mid-token truncation.
_CORRUPTION_MODES = ("empty", "punctuation", "reversed", "truncated")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the plan's ledger."""

    kind: str  # "service" | "node" | "write"
    target: str  # service name, node id, or partition id (stringified)
    detail: str  # error/timeout, drop/corrupt+mode, partitions-completed


class FaultPlan:
    """A seeded, deterministic schedule of platform faults.

    Faults are queued explicitly (``fail_service``, ``kill_node``,
    ``drop_write``, ``corrupt_write``) or generated from the seed by
    :meth:`scheduled`.  Consumers *consume* service and write faults
    FIFO; node deaths are static per-run schedule entries that every
    run re-applies (the simulated operator re-provisions nodes between
    runs).
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._service_faults: dict[str, deque[str]] = {}
        self._node_deaths: dict[int, int] = {}
        self._node_restarts: dict[int, float] = {}
        self._write_faults: dict[int, deque[str]] = {}
        self._ledger: list[FaultEvent] = []
        self._corruption_cursor = 0

    # -- scheduling -------------------------------------------------------------

    def fail_service(self, name: str, count: int = 1, kind: str = FAIL) -> "FaultPlan":
        """Make the next *count* requests to service *name* fail."""
        if kind not in (FAIL, TIMEOUT):
            raise ValueError(f"unknown service fault kind {kind!r}")
        if count < 1:
            raise ValueError("count must be positive")
        self._service_faults.setdefault(name, deque()).extend([kind] * count)
        return self

    def kill_node(self, node_id: int, after_partitions: int = 0) -> "FaultPlan":
        """Mark node *node_id* dead after it completes *after_partitions*.

        ``after_partitions=0`` means the node is dead before doing any
        work; a positive value models a mid-run crash.
        """
        if after_partitions < 0:
            raise ValueError("after_partitions must be non-negative")
        self._node_deaths[node_id] = after_partitions
        return self

    def restart_node(self, node_id: int, after_cost: float) -> "FaultPlan":
        """Schedule a killed node to rejoin at simulated time *after_cost*.

        The node is considered down on the half-open interval
        ``[0, after_cost)`` of the simulated clock and up from
        ``after_cost`` onward.  Restarting brings back an *empty-handed*
        node: its replicas are stale until anti-entropy catch-up ships
        the segments it missed, which is the recovery manager's job —
        the plan only decides *when* the machine answers again.
        """
        if after_cost < 0:
            raise ValueError("after_cost must be non-negative")
        if node_id not in self._node_deaths:
            raise ValueError(
                f"node {node_id} has no scheduled death; kill_node() it first"
            )
        self._node_restarts[node_id] = float(after_cost)
        return self

    def drop_write(self, partition_id: int, count: int = 1) -> "FaultPlan":
        """Silently discard the next *count* writes to a partition."""
        self._queue_write_fault(partition_id, DROP, count)
        return self

    def corrupt_write(self, partition_id: int, count: int = 1) -> "FaultPlan":
        """Garble the next *count* writes to a partition."""
        self._queue_write_fault(partition_id, CORRUPT, count)
        return self

    def _queue_write_fault(self, partition_id: int, kind: str, count: int) -> None:
        if count < 1:
            raise ValueError("count must be positive")
        self._write_faults.setdefault(partition_id, deque()).extend([kind] * count)

    @classmethod
    def scheduled(
        cls,
        seed: int,
        *,
        services: Iterable[str] = (),
        num_nodes: int = 0,
        num_partitions: int = 0,
        service_failure_rate: float = 0.0,
        node_death_rate: float = 0.0,
        write_drop_rate: float = 0.0,
        write_corrupt_rate: float = 0.0,
        max_failures_per_service: int = 3,
    ) -> "FaultPlan":
        """Build a random-but-deterministic plan from *seed*.

        Every probability draw comes from ``random.Random(seed)``, so a
        given seed always yields the identical schedule — the chaos
        harness enumerates seeds, not raw randomness.
        """
        plan = cls(seed)
        rng = plan._rng
        for name in services:
            if rng.random() < service_failure_rate:
                count = rng.randint(1, max_failures_per_service)
                kind = TIMEOUT if rng.random() < 0.5 else FAIL
                plan.fail_service(name, count=count, kind=kind)
        for node_id in range(num_nodes):
            if rng.random() < node_death_rate:
                plan.kill_node(node_id, after_partitions=rng.randint(0, 2))
        for partition_id in range(num_partitions):
            if rng.random() < write_drop_rate:
                plan.drop_write(partition_id, count=rng.randint(1, 2))
            if rng.random() < write_corrupt_rate:
                plan.corrupt_write(partition_id, count=rng.randint(1, 2))
        return plan

    # -- consumption (called by bus / cluster / store) -----------------------------

    def consume_service_fault(self, name: str) -> str | None:
        """Pop the next scheduled fault for a service, if any."""
        queue = self._service_faults.get(name)
        if not queue:
            return None
        kind = queue.popleft()
        self._ledger.append(FaultEvent("service", name, kind))
        return kind

    def node_death(self, node_id: int) -> int | None:
        """Partitions the node completes before dying; None = healthy."""
        return self._node_deaths.get(node_id)

    def node_restart(self, node_id: int) -> float | None:
        """Simulated time at which a killed node rejoins; None = never."""
        return self._node_restarts.get(node_id)

    def node_down(self, node_id: int, now: float) -> bool:
        """Is the node down *at* simulated time *now*?

        A node with a scheduled death is down until its scheduled
        restart time (forever, when no restart is scheduled).  Nodes
        with no scheduled death are always up.
        """
        if node_id not in self._node_deaths:
            return False
        restart = self._node_restarts.get(node_id)
        return restart is None or now < restart

    def intercept_write(self, partition_id: int, entity: "Entity") -> "Entity | None":
        """Apply the next write fault, if one is scheduled.

        Returns the entity to actually write: unchanged when no fault
        is pending, a corrupted replacement for ``corrupt``, or ``None``
        for ``drop`` (the write vanishes).
        """
        queue = self._write_faults.get(partition_id)
        if not queue:
            return entity
        kind = queue.popleft()
        if kind == DROP:
            self._ledger.append(FaultEvent("write", str(partition_id), DROP))
            return None
        corrupted = self.corrupt_entity(entity)
        self._ledger.append(
            FaultEvent("write", str(partition_id), f"{CORRUPT}:{corrupted.metadata['corruption']}")
        )
        return corrupted

    def corrupt_entity(self, entity: "Entity") -> "Entity":
        """A deterministically garbled copy of *entity*.

        Annotations are discarded (their spans no longer describe the
        content) and ``corrupted``/``corruption`` metadata is set so
        downstream miners can tell the document is damaged.
        """
        from .entity import Entity

        mode = _CORRUPTION_MODES[self._corruption_cursor % len(_CORRUPTION_MODES)]
        self._corruption_cursor += 1
        content = entity.content
        if mode == "empty":
            content = ""
        elif mode == "punctuation":
            content = "?! ... !! ??"
        elif mode == "reversed":
            content = content[::-1]
        else:  # truncated
            content = content[: max(1, len(content) // 3)]
        return Entity(
            entity_id=entity.entity_id,
            content=content,
            source=entity.source,
            metadata={**entity.metadata, "corrupted": True, "corruption": mode},
        )

    # -- introspection ----------------------------------------------------------------

    @property
    def dead_nodes(self) -> dict[int, int]:
        """Scheduled node deaths: node id -> partitions completed first."""
        return dict(self._node_deaths)

    @property
    def restarts(self) -> dict[int, float]:
        """Scheduled node restarts: node id -> rejoin simulated time."""
        return dict(self._node_restarts)

    def pending_service_faults(self, name: str) -> int:
        return len(self._service_faults.get(name, ()))

    def pending_write_faults(self, partition_id: int) -> int:
        return len(self._write_faults.get(partition_id, ()))

    def ledger(self) -> list[FaultEvent]:
        """Every fault injected so far, in injection order."""
        return list(self._ledger)

    @property
    def faults_injected(self) -> int:
        return len(self._ledger)

    def summary(self) -> dict[str, int]:
        """Injected-fault counts by kind (for reports and tests)."""
        out: dict[str, int] = {}
        for event in self._ledger:
            key = event.kind if event.kind != "write" else event.detail.split(":")[0]
            out[key] = out.get(key, 0) + 1
        out["scheduled_node_deaths"] = len(self._node_deaths)
        if self._node_restarts:
            out["scheduled_node_restarts"] = len(self._node_restarts)
        return out
