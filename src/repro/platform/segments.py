"""Incremental indexing: document deltas → immutable segments → live shards.

The paper's WebFountain ran a continuous crawl→analyze→index→serve loop;
this module is that loop's index side.  Ingestion emits
:class:`~.ingestion.DocumentDelta` batches, a :class:`DeltaIndexer`
mines each batch and seals it into an immutable :class:`IndexSegment`
(a mini sentiment + inverted index over just that batch), and the
serving shards absorb segments while continuing to answer queries.

The segment model (DESIGN.md §5f):

* **segments are immutable** — once sealed, a segment's indexes never
  change; updates and deletes in later batches *mask* earlier copies via
  tombstones instead of mutating them;
* **tombstones mask strictly earlier segments only** — a segment's own
  documents are always net of its own batch (the :class:`DeltaIndexer`
  resolves intra-batch update/delete chains while building);
* **snapshot reads** — a reader pins a version and sees exactly the
  segments sealed at or before it, no matter what absorbs or compactions
  happen mid-read (no torn views);
* **prefix compaction** — merging always starts at the base segment, so
  every tombstone in the merged prefix resolves and the merged segment
  carries none.

The equivalence contract, enforced by tests and the freshness bench:
for the same seed, indexing a corpus in one offline pass and indexing it
as N incremental batches (any partition, updates and deletes included)
converge to byte-identical query results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..core.miner import SentimentMiner
from ..core.model import Polarity
from ..obs import Obs
from ..obs.audit import AuditEntry
from ..obs.context import ROOT
from .entity import Entity
from .indexer import InvertedIndex, SentimentEntry, SentimentIndex
from .ingestion import DELTA_DELETE, DocumentDelta

if TYPE_CHECKING:  # pragma: no cover
    from .query import Query

#: Simulated cost charged per document sealed into a segment (indexing
#: work on top of the mining stage costs the miner itself charges).
SEAL_COST_PER_DOC = 0.01

#: Simulated cost charged per document rewritten by a compaction merge.
COMPACT_COST_PER_DOC = 0.002

#: Audit-entry kind recorded for every compaction decision.
AUDIT_KIND_COMPACTION = "compaction"


@dataclass(frozen=True)
class SegmentStats:
    """What one sealed segment contains."""

    documents: int
    deletes: int
    judgments: int


class IndexSegment:
    """One sealed batch: mini indexes plus the batch's tombstones.

    Immutable by convention: nothing in the codebase mutates a segment
    after :meth:`DeltaIndexer.index_batch` returns it, and the serving
    shards share segment objects across replicas on that basis.
    """

    def __init__(
        self,
        segment_id: int,
        sentiment: SentimentIndex,
        inverted: InvertedIndex,
        entities: tuple[Entity, ...],
        tombstones: frozenset[str],
        stats: SegmentStats,
    ):
        self.segment_id = segment_id
        self.sentiment = sentiment
        self.inverted = inverted
        self.entities = entities
        self.tombstones = tombstones
        self.stats = stats

    @property
    def doc_ids(self) -> frozenset[str]:
        return self.inverted.doc_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexSegment(id={self.segment_id}, docs={self.stats.documents}, "
            f"deletes={self.stats.deletes})"
        )


class DeltaIndexer:
    """Turns a batch of document deltas into one immutable segment.

    Adds and updates are mined (the same per-document pipeline as the
    offline pass — determinism of the equivalence gate rests on this)
    and indexed; deletes become tombstones.  Every delta's id is
    tombstoned so earlier copies of updated documents are masked; the
    segment's own indexes are already net of intra-batch chains.
    """

    def __init__(self, miner: SentimentMiner, obs: Obs | None = None):
        self._miner = miner
        self._obs = obs if obs is not None else Obs.default()
        self._next_segment_id = 0

    @property
    def segments_built(self) -> int:
        return self._next_segment_id

    def index_batch(self, deltas: Iterable[DocumentDelta]) -> IndexSegment:
        """Mine and seal one batch (delivery order) into a segment."""
        deltas = list(deltas)
        obs = self._obs
        sentiment = SentimentIndex()
        inverted = InvertedIndex()
        live: dict[str, Entity] = {}
        tombstones: set[str] = set()
        deletes = 0
        judgments = 0
        with obs.tracer.span(
            "segment.build", segment_id=self._next_segment_id, deltas=len(deltas)
        ) as span:
            for delta in deltas:
                tombstones.add(delta.entity_id)
                if delta.kind == DELTA_DELETE:
                    deletes += 1
                    if delta.entity_id in live:
                        del live[delta.entity_id]
                        inverted.remove_entity(delta.entity_id)
                        judgments -= sentiment.remove_document(delta.entity_id)
                    continue
                entity = delta.entity
                if delta.entity_id in live:
                    # Intra-batch update: the segment stays net.
                    inverted.remove_entity(delta.entity_id)
                    judgments -= sentiment.remove_document(delta.entity_id)
                result = self._miner.mine_document(entity.content, entity.entity_id)
                polar = result.polar_judgments()
                sentiment.add_all(polar)
                judgments += len(polar)
                inverted.add_entity(entity)
                live[delta.entity_id] = entity
                obs.clock.advance(SEAL_COST_PER_DOC)
            span.set_attribute("documents", len(live))
            span.set_attribute("tombstones", len(tombstones))
        segment = IndexSegment(
            segment_id=self._next_segment_id,
            sentiment=sentiment,
            inverted=inverted,
            entities=tuple(live.values()),
            tombstones=frozenset(tombstones),
            stats=SegmentStats(
                documents=len(live), deletes=deletes, judgments=judgments
            ),
        )
        self._next_segment_id += 1
        obs.metrics.counter("segments.sealed").inc()
        obs.metrics.counter("segments.documents").inc(len(live))
        return segment


# ---------------------------------------------------------------------------
# shard-side segments and snapshot views
# ---------------------------------------------------------------------------


@dataclass
class ShardSegment:
    """One shard's slice of a sealed segment, tagged with its version.

    Version 0 is the mutable *base* segment every replica starts with —
    the offline bulk-build path writes there.  Versions ≥ 1 are slices
    of absorbed :class:`IndexSegment`\\ s and are immutable; replicas of
    the same shard share the slice objects.
    """

    version: int
    sentiment: SentimentIndex = field(default_factory=SentimentIndex)
    inverted: InvertedIndex = field(default_factory=InvertedIndex)
    tombstones: frozenset[str] = frozenset()


def _masks(segments: list[ShardSegment]) -> list[frozenset[str]]:
    """Per-segment masks: ids deleted/superseded by any *later* segment."""
    masks: list[frozenset[str]] = [frozenset()] * len(segments)
    accumulated: frozenset[str] = frozenset()
    for i in range(len(segments) - 1, -1, -1):
        masks[i] = accumulated
        accumulated = accumulated | segments[i].tombstones
    return masks


class SentimentSnapshot:
    """Read-only sentiment view over a pinned segment list.

    Mirrors the :class:`~.indexer.SentimentIndex` query API; entries from
    masked documents (deleted or superseded at a later version) are
    invisible.  Entry order is segment order then insertion order, which
    equals one-pass insertion order — the equivalence gate's requirement.
    """

    def __init__(self, segments: list[ShardSegment], masks: list[frozenset[str]]):
        self._segments = segments
        self._masks = masks

    def query(self, subject: str, polarity: Polarity | None = None) -> list[SentimentEntry]:
        out: list[SentimentEntry] = []
        for segment, mask in zip(self._segments, self._masks):
            for entry in segment.sentiment.query(subject, polarity):
                if entry.entity_id not in mask:
                    out.append(entry)
        return out

    def counts(self, subject: str) -> dict[Polarity, int]:
        out = {Polarity.POSITIVE: 0, Polarity.NEGATIVE: 0}
        for entry in self.query(subject):
            out[entry.polarity] += 1
        return out

    def subject_counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for segment, mask in zip(self._segments, self._masks):
            for subject, entries in segment.sentiment.items():
                live = sum(1 for e in entries if e.entity_id not in mask)
                if live:
                    totals[subject] = totals.get(subject, 0) + live
        return dict(sorted(totals.items()))

    def subjects(self) -> list[str]:
        totals = self.subject_counts()
        return sorted(totals, key=lambda s: (-totals[s], s))

    def __len__(self) -> int:
        return sum(self.subject_counts().values())


class InvertedSnapshot:
    """Read-only inverted-index view over a pinned segment list.

    Every live document's current version lives in exactly one segment
    (re-adds tombstone earlier copies), so per-segment query evaluation
    minus masked ids unions to exactly the single-index answer —
    including ``NOT``, phrase and range queries, which are all per-
    document predicates.
    """

    def __init__(self, segments: list[ShardSegment], masks: list[frozenset[str]]):
        self._segments = segments
        self._masks = masks

    def search(self, query: "Query | str") -> set[str]:
        out: set[str] = set()
        for segment, mask in zip(self._segments, self._masks):
            out.update(segment.inverted.search(query) - mask)
        return out

    @property
    def doc_ids(self) -> frozenset[str]:
        out: set[str] = set()
        for segment, mask in zip(self._segments, self._masks):
            out.update(segment.inverted.doc_ids - mask)
        return frozenset(out)

    @property
    def document_count(self) -> int:
        return sum(
            len(segment.inverted.doc_ids - mask)
            for segment, mask in zip(self._segments, self._masks)
        )

    def document_frequency(self, token: str) -> int:
        return sum(
            len(segment.inverted.documents_for(token) - mask)
            for segment, mask in zip(self._segments, self._masks)
        )

    def idf(self, token: str) -> float:
        df = self.document_frequency(token)
        total = self.document_count
        if df == 0 or total == 0:
            return 1.0
        return math.log(total / df) + 1.0

    def idf_table(self) -> dict[str, float]:
        tokens: set[str] = set()
        for segment in self._segments:
            tokens.update(segment.inverted.tokens())
        return {
            token: self.idf(token)
            for token in sorted(tokens)
            if self.document_frequency(token) > 0
        }


class ReplicaSnapshot:
    """One pinned, immutable view of a shard replica: no torn reads."""

    def __init__(self, version: int, segments: list[ShardSegment]):
        self.version = version
        self._segments = [s for s in segments if s.version <= version]
        masks = _masks(self._segments)
        self.sentiment = SentimentSnapshot(self._segments, masks)
        self.inverted = InvertedSnapshot(self._segments, masks)

    @property
    def segment_versions(self) -> list[int]:
        return [s.version for s in self._segments]


def merge_segments(segments: list[ShardSegment]) -> ShardSegment:
    """Compact a *prefix* of a shard's segment log into one segment.

    The prefix must start at the base segment, so every tombstone in it
    refers to a document inside the prefix; masked copies are physically
    dropped and the merged segment carries no tombstones.  The merged
    version is the prefix's highest version, so existing pins at or
    above it read identically before and after the merge.
    """
    if not segments:
        raise ValueError("cannot merge an empty segment list")
    masks = _masks(segments)
    sentiment = SentimentIndex()
    inverted = InvertedIndex()
    for segment, mask in zip(segments, masks):
        sentiment.absorb(segment.sentiment, skip=mask)
        inverted.absorb(segment.inverted, skip=mask)
    return ShardSegment(
        version=segments[-1].version,
        sentiment=sentiment,
        inverted=inverted,
        tombstones=frozenset(),
    )


@dataclass(frozen=True)
class CompactionPolicy:
    """When and at what simulated cost shards merge their segment logs."""

    max_segments: int = 4
    cost_per_doc: float = COMPACT_COST_PER_DOC

    def should_compact(self, segment_count: int) -> bool:
        return segment_count > self.max_segments


class LiveIndexer:
    """Drives deltas through the indexer into the serving shards.

    The crawl→analyze→index→serve loop's coordinator: each
    :meth:`apply_batch` seals one segment, has every shard absorb it,
    and runs background compaction on the simulated clock — all while
    the router keeps serving snapshot reads against pinned versions.
    Freshness (ingest-to-queryable, simulated time) is recorded per
    batch in the ``ingest.freshness_lag`` histogram.
    """

    def __init__(
        self,
        index,  # ReplicatedIndex; untyped to avoid a circular import
        delta_indexer: DeltaIndexer,
        *,
        obs: Obs | None = None,
        policy: CompactionPolicy | None = None,
        wal=None,  # WriteAheadLog; untyped to avoid a circular import
    ):
        self._index = index
        self._delta_indexer = delta_indexer
        self._obs = obs if obs is not None else Obs.default()
        self._policy = policy or CompactionPolicy()
        self._wal = wal
        self._lag = self._obs.metrics.histogram("ingest.freshness_lag")
        self._ingest_lag = self._obs.metrics.histogram("ingest.lag")
        self._docs = self._obs.metrics.counter("ingest.documents_indexed")
        self._compactions = self._obs.metrics.counter("segments.compactions")
        self._compaction_runs = self._obs.metrics.counter("compaction.runs")
        self._compaction_docs = self._obs.metrics.counter("compaction.merged_docs")
        self.batches_applied = 0
        self.documents_indexed = 0

    @property
    def index(self):
        return self._index

    @property
    def policy(self) -> CompactionPolicy:
        return self._policy

    def apply_batch(
        self, deltas: list[DocumentDelta], *, lsn: int = 0
    ) -> dict[str, float | int]:
        """Seal, absorb and maybe compact one batch; returns batch stats.

        Each batch is its own root trace (``ingest.batch``): background
        index maintenance must never be attributed to whatever request
        trace happens to be open, and the segment id on the span links
        the trace to the segment it produced.

        When the batch came through a write-ahead log, pass its *lsn*:
        the WAL record is sealed only after every replica has absorbed
        the segment, which is the durability point a crash-replay
        resumes from.
        """
        obs = self._obs
        started_at = obs.clock.now
        with obs.tracer.span(
            "ingest.batch", parent=ROOT, deltas=len(deltas)
        ) as batch_span:
            segment = self._delta_indexer.index_batch(deltas)
            batch_span.set_attribute("segment_id", segment.segment_id)
            with obs.tracer.span(
                "segment.absorb", segment_id=segment.segment_id
            ) as absorb_span:
                version = self._index.absorb(segment)
                absorb_span.set_attribute("version", version)
            if self._wal is not None and lsn:
                self._wal.seal(lsn)
            queryable_at = obs.clock.now
            lag = queryable_at - started_at
            self._lag.observe(lag)
            self._ingest_lag.observe(lag, trace_id=batch_span.trace_id)
            self._docs.inc(segment.stats.documents)
            self.batches_applied += 1
            self.documents_indexed += segment.stats.documents
            merged = self._maybe_compact()
        return {
            "version": version,
            "documents": segment.stats.documents,
            "deletes": segment.stats.deletes,
            "judgments": segment.stats.judgments,
            "freshness_lag": lag,
            "segments_merged": merged,
        }

    def _maybe_compact(self) -> int:
        """Background merge: compact when any replica's log grows too long.

        Every time the policy trips, the decision and its outcome are
        recorded in the audit trail: the trigger (longest segment log vs
        the policy ceiling), the pin floor compaction may merge up to,
        and whether anything was actually mergeable below that floor.
        """
        obs = self._obs
        segment_count = self._index.max_segment_count()
        if not self._policy.should_compact(segment_count):
            return 0
        floor = self._index.compaction_floor()
        pins = self._index.active_pins()
        with obs.tracer.span(
            "segment.compact", segments=segment_count, floor=floor
        ) as span:
            merged, rewritten = self._index.compact()
            span.set_attribute("merged", merged)
            span.set_attribute("rewritten", rewritten)
            if merged:
                obs.clock.advance(self._policy.cost_per_doc * rewritten)
        obs.audit.record(
            AuditEntry(
                kind=AUDIT_KIND_COMPACTION,
                subject=f"segments:{segment_count}",
                decision="ran" if merged else "blocked",
                reason=(
                    f"segment log {segment_count} exceeds policy max "
                    f"{self._policy.max_segments}"
                ),
                detail=(
                    ("floor", floor),
                    ("merged", merged),
                    ("pins", {str(v): n for v, n in sorted(pins.items())}),
                    ("rewritten", rewritten),
                ),
            )
        )
        if merged:
            self._compactions.inc()
            self._compaction_runs.inc()
            self._compaction_docs.inc(rewritten)
        return merged
