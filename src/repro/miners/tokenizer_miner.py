"""Tokenization as an annotating entity miner.

"The tokenizer produces a stream of tokens from the input text."  This
adapter writes ``token`` and ``sentence`` layers; a separate
:class:`PosTaggerMiner` adds the ``pos`` layer so downstream miners can
reconstruct tagged sentences without re-running the tagger.
"""

from __future__ import annotations

from ..nlp.postagger import PosTagger, default_tagger
from ..nlp.sentences import SentenceSplitter
from ..nlp.tokenizer import Tokenizer
from ..core.entity import Annotation, Entity
from ..core.mining import EntityMiner
from . import base


class TokenizerMiner(EntityMiner):
    """Writes ``token`` and ``sentence`` annotation layers."""

    name = "tokenizer"
    requires = ()
    provides = (base.TOKEN_LAYER, base.SENTENCE_LAYER)

    def __init__(self, tokenizer: Tokenizer | None = None):
        self._tokenizer = tokenizer or Tokenizer()
        self._splitter = SentenceSplitter(self._tokenizer)

    def process(self, entity: Entity) -> None:
        entity.clear_layer(base.TOKEN_LAYER)
        entity.clear_layer(base.SENTENCE_LAYER)
        sentences = self._splitter.split_text(entity.content)
        for sentence in sentences:
            entity.annotate(
                Annotation.make(
                    base.SENTENCE_LAYER, sentence.start, sentence.end, label=str(sentence.index)
                )
            )
            for token in sentence.tokens:
                entity.annotate(Annotation.make(base.TOKEN_LAYER, token.start, token.end))


class PosTaggerMiner(EntityMiner):
    """Writes the ``pos`` layer (one annotation per token)."""

    name = "pos-tagger"
    requires = (base.TOKEN_LAYER, base.SENTENCE_LAYER)
    provides = (base.POS_LAYER,)

    def __init__(self, tagger: PosTagger | None = None):
        self._tagger = tagger or default_tagger()

    def process(self, entity: Entity) -> None:
        entity.clear_layer(base.POS_LAYER)
        for sentence in base.sentences_from(entity):
            for tagged in self._tagger.tag(sentence):
                entity.annotate(
                    Annotation.make(base.POS_LAYER, tagged.start, tagged.end, label=tagged.tag)
                )
