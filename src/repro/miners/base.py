"""Shared helpers for the WebFountain adapter miners.

Adapter miners communicate exclusively through entity annotation layers:

* ``token``    — one annotation per token (label unused);
* ``sentence`` — one annotation per sentence (label = sentence index);
* ``pos``      — one annotation per token (label = Penn tag);
* ``spot``     — subject occurrences (label = canonical subject name);
* ``entity``   — named-entity occurrences (label = entity name);
* ``sentiment``— judgments (label = polarity symbol; attributes carry
  the subject and pattern provenance).

The reconstruction helpers below rebuild NLP objects from those layers so
downstream miners never re-tokenize.
"""

from __future__ import annotations

from ..core.model import Spot, Subject
from ..nlp.tokens import Sentence, TaggedSentence, TaggedToken, Token
from ..core.entity import Annotation, Entity

TOKEN_LAYER = "token"
SENTENCE_LAYER = "sentence"
POS_LAYER = "pos"
SPOT_LAYER = "spot"
ENTITY_LAYER = "entity"
SENTIMENT_LAYER = "sentiment"


def tokens_from(entity: Entity) -> list[Token]:
    """Rebuild tokens from the ``token`` layer."""
    return [
        Token(entity.text_of(a), a.span.start, a.span.end)
        for a in entity.layer(TOKEN_LAYER)
    ]


def sentences_from(entity: Entity) -> list[Sentence]:
    """Rebuild sentences by grouping tokens under ``sentence`` spans."""
    tokens = tokens_from(entity)
    sentences: list[Sentence] = []
    for annotation in entity.layer(SENTENCE_LAYER):
        covered = [t for t in tokens if annotation.span.contains(t.span)]
        if covered:
            sentences.append(Sentence(covered, index=int(annotation.label)))
    return sentences


def tagged_sentences_from(entity: Entity) -> list[TaggedSentence]:
    """Rebuild tagged sentences from ``sentence`` + ``pos`` layers."""
    tags_by_start = {a.span.start: a.label for a in entity.layer(POS_LAYER)}
    out: list[TaggedSentence] = []
    for sentence in sentences_from(entity):
        tagged = [
            TaggedToken(token, tags_by_start.get(token.start, "NN"))
            for token in sentence.tokens
        ]
        out.append(TaggedSentence(tagged, index=sentence.index))
    return out


def spots_from(entity: Entity, subjects_by_name: dict[str, Subject] | None = None) -> list[Spot]:
    """Rebuild spots from the ``spot`` layer."""
    subjects_by_name = subjects_by_name or {}
    spots: list[Spot] = []
    for annotation in entity.layer(SPOT_LAYER):
        subject = subjects_by_name.get(annotation.label) or Subject(annotation.label)
        spots.append(
            Spot(
                subject=subject,
                term=entity.text_of(annotation),
                span=annotation.span,
                sentence_index=int(annotation.attribute("sentence", 0)),
                document_id=entity.entity_id,
            )
        )
    return spots


def annotate_spot(entity: Entity, spot: Spot, layer: str = SPOT_LAYER) -> None:
    """Write one spot into an annotation layer."""
    entity.annotate(
        Annotation.make(
            layer,
            spot.start,
            spot.end,
            label=spot.subject.canonical,
            sentence=spot.sentence_index,
        )
    )
