"""Template (boilerplate) detection across same-site pages.

The paper lists "template detection [Bar-Yossef & Rajagopalan 2002]"
among the deployed miners.  Web pages from one site share navigation and
footer boilerplate; sentiment mined from boilerplate is noise, so the
miner finds sentences repeated verbatim across many pages of a site and
marks them with a ``template`` annotation that downstream miners can
skip.

Two phases, matching the corpus-miner contract: the map/reduce pass
counts sentence occurrences per site; :meth:`annotate_corpus` then marks
the repeated sentences on each entity.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..nlp.sentences import SentenceSplitter
from ..core.entity import Annotation, Entity
from ..core.mining import CorpusMiner


def _site_of(entity: Entity) -> str:
    """Site key: the URL's host-ish prefix, else the entity source."""
    url = entity.metadata.get("url", "")
    if isinstance(url, str) and "/" in url:
        return url.split("/")[2] if "://" in url else url.split("/")[0]
    return entity.source


def _fingerprint(sentence_text: str) -> str:
    normalised = " ".join(sentence_text.lower().split())
    return hashlib.md5(normalised.encode("utf-8")).hexdigest()[:16]


@dataclass
class TemplatePartial:
    """Per-partition counts: (site, sentence fingerprint) -> page count."""

    sentence_pages: Counter = field(default_factory=Counter)
    site_pages: Counter = field(default_factory=Counter)


class TemplateDetectionMiner(CorpusMiner[TemplatePartial]):
    """Detect boilerplate sentences repeated across a site's pages.

    A sentence is boilerplate when it appears on at least
    ``min_pages`` pages and at least ``min_fraction`` of the site's
    pages.
    """

    name = "template-detector"

    def __init__(self, min_pages: int = 3, min_fraction: float = 0.5):
        if min_pages < 2:
            raise ValueError("min_pages must be at least 2")
        if not 0.0 < min_fraction <= 1.0:
            raise ValueError("min_fraction must lie in (0, 1]")
        self._min_pages = min_pages
        self._min_fraction = min_fraction
        self._splitter = SentenceSplitter()

    # -- map/reduce --------------------------------------------------------------------

    def map_partition(self, entities: Iterable[Entity]) -> TemplatePartial:
        partial = TemplatePartial()
        for entity in entities:
            site = _site_of(entity)
            partial.site_pages[site] += 1
            seen: set[str] = set()
            for sentence in self._splitter.split_text(entity.content):
                key = _fingerprint(sentence.text_of(entity.content))
                if key not in seen:
                    seen.add(key)
                    partial.sentence_pages[(site, key)] += 1
        return partial

    def reduce(self, partials: list[TemplatePartial]) -> TemplatePartial:
        merged = TemplatePartial()
        for partial in partials:
            merged.sentence_pages.update(partial.sentence_pages)
            merged.site_pages.update(partial.site_pages)
        return merged

    # -- boilerplate decision -----------------------------------------------------------

    def boilerplate_keys(self, merged: TemplatePartial) -> set[tuple[str, str]]:
        """(site, fingerprint) pairs judged to be boilerplate."""
        out = set()
        for (site, key), pages in merged.sentence_pages.items():
            site_total = merged.site_pages[site]
            if pages >= self._min_pages and pages / site_total >= self._min_fraction:
                out.add((site, key))
        return out

    def annotate_corpus(self, entities: Iterable[Entity], merged: TemplatePartial) -> int:
        """Mark boilerplate sentences with ``template`` annotations.

        Returns the number of annotations written.
        """
        boilerplate = self.boilerplate_keys(merged)
        written = 0
        for entity in entities:
            entity.clear_layer("template")
            site = _site_of(entity)
            for sentence in self._splitter.split_text(entity.content):
                key = _fingerprint(sentence.text_of(entity.content))
                if (site, key) in boilerplate:
                    entity.annotate(
                        Annotation.make(
                            "template", sentence.start, sentence.end, label="boilerplate"
                        )
                    )
                    written += 1
        return written
