"""Corpus-level document clustering (k-means over TF-IDF).

"Clustering" closes out the paper's list of corpus-level miner examples.
Implementation: sparse TF-IDF document vectors, cosine distance, k-means
with deterministic k-means++ seeding (seeded RNG, no global state).
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..nlp.tokenizer import Tokenizer
from ..core.entity import Entity
from ..core.mining import CorpusMiner

Vector = dict[str, float]


def _normalise(vector: Vector) -> Vector:
    norm = math.sqrt(sum(v * v for v in vector.values()))
    if norm == 0:
        return dict(vector)
    return {k: v / norm for k, v in vector.items()}


def cosine_similarity(a: Vector, b: Vector) -> float:
    """Cosine similarity of two (not necessarily normalised) vectors."""
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(value * b.get(key, 0.0) for key, value in a.items())
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


@dataclass
class ClusteringPartial:
    """Per-partition term counts: document id -> term frequencies."""

    term_counts: dict[str, Counter] = field(default_factory=dict)


@dataclass
class ClusterResult:
    """Final clustering: assignments plus descriptive labels."""

    assignments: dict[str, int]
    top_terms: list[list[str]]

    @property
    def num_clusters(self) -> int:
        return len(self.top_terms)

    def members(self, cluster: int) -> list[str]:
        return sorted(eid for eid, c in self.assignments.items() if c == cluster)


class ClusteringMiner(CorpusMiner[ClusteringPartial]):
    """Map/reduce TF-IDF k-means clustering."""

    name = "clustering"

    def __init__(self, k: int = 2, seed: int = 2005, max_iterations: int = 25):
        if k < 1:
            raise ValueError("k must be positive")
        self._k = k
        self._seed = seed
        self._max_iterations = max_iterations
        self._tokenizer = Tokenizer()

    # -- map/reduce ------------------------------------------------------------------

    def map_partition(self, entities: Iterable[Entity]) -> ClusteringPartial:
        partial = ClusteringPartial()
        for entity in entities:
            counts = Counter(
                t.lower for t in self._tokenizer.tokenize(entity.content) if t.is_alpha
            )
            partial.term_counts[entity.entity_id] = counts
        return partial

    def reduce(self, partials: list[ClusteringPartial]) -> ClusteringPartial:
        merged = ClusteringPartial()
        for partial in partials:
            merged.term_counts.update(partial.term_counts)
        return merged

    # -- clustering ---------------------------------------------------------------------

    def cluster(self, merged: ClusteringPartial) -> ClusterResult:
        """Run k-means on the merged counts."""
        doc_ids = sorted(merged.term_counts)
        if not doc_ids:
            return ClusterResult(assignments={}, top_terms=[])
        vectors = self._tfidf(merged, doc_ids)
        k = min(self._k, len(doc_ids))
        centroids = self._seed_centroids(vectors, doc_ids, k)
        assignments: dict[str, int] = {}
        for _ in range(self._max_iterations):
            new_assignments = {
                doc_id: self._nearest(vectors[doc_id], centroids) for doc_id in doc_ids
            }
            if new_assignments == assignments:
                break
            assignments = new_assignments
            centroids = self._recompute(vectors, assignments, centroids, k)
        top_terms = self._describe(centroids)
        return ClusterResult(assignments=assignments, top_terms=top_terms)

    # -- internals -------------------------------------------------------------------------

    def _tfidf(self, merged: ClusteringPartial, doc_ids: list[str]) -> dict[str, Vector]:
        df: Counter = Counter()
        for doc_id in doc_ids:
            df.update(set(merged.term_counts[doc_id]))
        n = len(doc_ids)
        vectors: dict[str, Vector] = {}
        for doc_id in doc_ids:
            counts = merged.term_counts[doc_id]
            vectors[doc_id] = _normalise(
                {
                    term: count * (math.log(n / df[term]) + 1.0)
                    for term, count in counts.items()
                }
            )
        return vectors

    def _seed_centroids(
        self, vectors: dict[str, Vector], doc_ids: list[str], k: int
    ) -> list[Vector]:
        """k-means++ seeding with a deterministic RNG."""
        rng = random.Random(self._seed)
        centroids = [dict(vectors[rng.choice(doc_ids)])]
        while len(centroids) < k:
            distances = []
            for doc_id in doc_ids:
                best = max(cosine_similarity(vectors[doc_id], c) for c in centroids)
                distances.append(max(0.0, 1.0 - best) ** 2)
            total = sum(distances)
            if total == 0:
                centroids.append(dict(vectors[rng.choice(doc_ids)]))
                continue
            pick = rng.random() * total
            acc = 0.0
            for doc_id, distance in zip(doc_ids, distances):
                acc += distance
                if acc >= pick:
                    centroids.append(dict(vectors[doc_id]))
                    break
        return centroids

    @staticmethod
    def _nearest(vector: Vector, centroids: list[Vector]) -> int:
        best_index = 0
        best_similarity = -1.0
        for index, centroid in enumerate(centroids):
            similarity = cosine_similarity(vector, centroid)
            if similarity > best_similarity:
                best_similarity = similarity
                best_index = index
        return best_index

    @staticmethod
    def _recompute(
        vectors: dict[str, Vector],
        assignments: dict[str, int],
        old_centroids: list[Vector],
        k: int,
    ) -> list[Vector]:
        sums: list[Vector] = [dict() for _ in range(k)]
        sizes = [0] * k
        for doc_id, cluster in assignments.items():
            sizes[cluster] += 1
            for term, value in vectors[doc_id].items():
                sums[cluster][term] = sums[cluster].get(term, 0.0) + value
        centroids = []
        for index in range(k):
            if sizes[index] == 0:
                centroids.append(old_centroids[index])  # keep empty cluster seed
            else:
                centroids.append(
                    _normalise({t: v / sizes[index] for t, v in sums[index].items()})
                )
        return centroids

    @staticmethod
    def _describe(centroids: list[Vector], top_n: int = 5) -> list[list[str]]:
        return [
            [term for term, _ in sorted(c.items(), key=lambda kv: -kv[1])[:top_n]]
            for c in centroids
        ]
