"""Corpus-level aggregate statistics miner.

"Examples of [corpus]-level miners are computing aggregate statistics,
duplicate detection, trending, and clustering."  This miner computes the
aggregate statistics: document/source counts, token counts, vocabulary
size and the most frequent terms — the numbers a platform operator
watches.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..nlp.tokenizer import Tokenizer
from ..core.entity import Entity
from ..core.mining import CorpusMiner

#: Very common words excluded from the top-terms report.
_STOPWORDS = frozenset(
    "the a an and or but of in on at to for with is are was were be i it "
    "this that my your his her its our their not no".split()
)


@dataclass
class CorpusStatistics:
    """Aggregates over one partition or (after reduce) the whole corpus."""

    documents: int = 0
    tokens: int = 0
    sentences_estimate: int = 0
    per_source: Counter = field(default_factory=Counter)
    term_frequency: Counter = field(default_factory=Counter)

    @property
    def vocabulary_size(self) -> int:
        return len(self.term_frequency)

    @property
    def mean_tokens_per_document(self) -> float:
        return self.tokens / self.documents if self.documents else 0.0

    def top_terms(self, n: int = 10) -> list[tuple[str, int]]:
        filtered = Counter(
            {t: c for t, c in self.term_frequency.items() if t not in _STOPWORDS and t.isalpha()}
        )
        return filtered.most_common(n)


class AggregateStatisticsMiner(CorpusMiner[CorpusStatistics]):
    """Map/reduce corpus statistics."""

    name = "aggregate-statistics"

    def __init__(self):
        self._tokenizer = Tokenizer()

    def map_partition(self, entities: Iterable[Entity]) -> CorpusStatistics:
        stats = CorpusStatistics()
        for entity in entities:
            stats.documents += 1
            stats.per_source[entity.source] += 1
            tokens = self._tokenizer.tokenize(entity.content)
            stats.tokens += len(tokens)
            stats.sentences_estimate += sum(1 for t in tokens if t.text in ".!?")
            stats.term_frequency.update(t.lower for t in tokens)
        return stats

    def reduce(self, partials: list[CorpusStatistics]) -> CorpusStatistics:
        merged = CorpusStatistics()
        for partial in partials:
            merged.documents += partial.documents
            merged.tokens += partial.tokens
            merged.sentences_estimate += partial.sentences_estimate
            merged.per_source.update(partial.per_source)
            merged.term_frequency.update(partial.term_frequency)
        return merged
