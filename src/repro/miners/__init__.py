"""WebFountain adapter miners: the paper's miner inventory.

Each miner adapts a :mod:`repro.core` algorithm to the platform's
annotation-layer contract so pipelines can be deployed on the simulated
cluster exactly as Figure 2 / Figure 3 describe.  The module also
includes the other miners the paper names as platform examples:
duplicate detection, aggregate statistics, and geographic context.
"""

from . import base
from .clustering import ClusteringMiner, ClusterResult, cosine_similarity
from .disambiguator import DisambiguatorMiner
from .duplicates import (
    DuplicateDetectionMiner,
    DuplicatePair,
    jaccard,
    minhash_signature,
    shingles,
)
from .feature_miner import FeaturePartial, FeatureTermMiner
from .geographic import DEFAULT_GAZETTEER, GeographicContextMiner
from .ne_spotter import NamedEntityMiner
from .sentiment_miner import (
    OpenSentimentEntityMiner,
    SentimentEntityMiner,
    judgments_from,
)
from .spotter import SpotterMiner
from .statistics import AggregateStatisticsMiner, CorpusStatistics
from .template_detection import TemplateDetectionMiner, TemplatePartial
from .tokenizer_miner import PosTaggerMiner, TokenizerMiner

__all__ = [
    "AggregateStatisticsMiner",
    "ClusterResult",
    "ClusteringMiner",
    "CorpusStatistics",
    "DEFAULT_GAZETTEER",
    "DisambiguatorMiner",
    "DuplicateDetectionMiner",
    "DuplicatePair",
    "FeaturePartial",
    "FeatureTermMiner",
    "GeographicContextMiner",
    "NamedEntityMiner",
    "OpenSentimentEntityMiner",
    "PosTaggerMiner",
    "SentimentEntityMiner",
    "SpotterMiner",
    "TemplateDetectionMiner",
    "TemplatePartial",
    "TokenizerMiner",
    "base",
    "cosine_similarity",
    "jaccard",
    "judgments_from",
    "minhash_signature",
    "shingles",
]
