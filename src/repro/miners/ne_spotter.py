"""The named-entity spotter miner (mode B's subject discovery).

"We use a simple named entity spotter that detects all capitalized nouns
... and extract a corresponding sentiment context."
"""

from __future__ import annotations

from ..core.spotting import NamedEntitySpotter
from ..core.entity import Annotation, Entity
from ..core.mining import EntityMiner
from . import base


class NamedEntityMiner(EntityMiner):
    """Writes the ``entity`` layer with capitalized-noun-phrase names."""

    name = "ne-spotter"
    requires = (base.TOKEN_LAYER, base.SENTENCE_LAYER, base.POS_LAYER)
    provides = (base.ENTITY_LAYER,)

    def __init__(self):
        self._spotter = NamedEntitySpotter()

    def process(self, entity: Entity) -> None:
        entity.clear_layer(base.ENTITY_LAYER)
        for tagged in base.tagged_sentences_from(entity):
            for spot in self._spotter.spot_sentence(tagged, entity.entity_id):
                entity.annotate(
                    Annotation.make(
                        base.ENTITY_LAYER,
                        spot.start,
                        spot.end,
                        label=spot.subject.canonical,
                        sentence=spot.sentence_index,
                    )
                )
