"""Corpus-level duplicate detection (MinHash over shingles).

The paper names "duplicate detection" among WebFountain's corpus-level
miners.  This implementation is the standard near-duplicate pipeline:

1. each document becomes a set of word *k*-shingles;
2. a MinHash signature (``num_hashes`` permutations via salted md5)
   sketches the shingle set;
3. LSH banding proposes candidate pairs;
4. candidates are verified against the exact Jaccard similarity of
   their shingle sets.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from ..core.entity import Entity
from ..core.mining import CorpusMiner


def shingles(text: str, k: int = 3) -> set[str]:
    """Lower-cased word k-shingles of *text* (the whole text if short)."""
    words = text.lower().split()
    if len(words) < k:
        return {" ".join(words)} if words else set()
    return {" ".join(words[i : i + k]) for i in range(len(words) - k + 1)}


def _hash(value: str, salt: int) -> int:
    digest = hashlib.md5(f"{salt}:{value}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def minhash_signature(shingle_set: set[str], num_hashes: int = 48) -> tuple[int, ...]:
    """MinHash signature; empty sets get an all-max sentinel signature."""
    if not shingle_set:
        return tuple([2**64 - 1] * num_hashes)
    return tuple(
        min(_hash(shingle, salt) for shingle in shingle_set)
        for salt in range(num_hashes)
    )


def jaccard(a: set[str], b: set[str]) -> float:
    """Exact Jaccard similarity; empty-vs-empty counts as 1.0."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


@dataclass
class DuplicatePartial:
    """Per-partition sketch: document id -> (signature, shingles)."""

    sketches: dict[str, tuple[tuple[int, ...], set[str]]] = field(default_factory=dict)


@dataclass(frozen=True)
class DuplicatePair:
    """One verified near-duplicate pair."""

    first: str
    second: str
    similarity: float


class DuplicateDetectionMiner(CorpusMiner[DuplicatePartial]):
    """Find near-duplicate entity pairs across the whole corpus."""

    name = "duplicate-detector"

    def __init__(
        self,
        shingle_size: int = 3,
        num_hashes: int = 48,
        bands: int = 12,
        threshold: float = 0.8,
    ):
        if num_hashes % bands != 0:
            raise ValueError("bands must divide num_hashes")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must lie in (0, 1]")
        self._shingle_size = shingle_size
        self._num_hashes = num_hashes
        self._bands = bands
        self._rows = num_hashes // bands
        self._threshold = threshold

    # -- map/reduce --------------------------------------------------------------

    def map_partition(self, entities: Iterable[Entity]) -> DuplicatePartial:
        partial = DuplicatePartial()
        for entity in entities:
            shingle_set = shingles(entity.content, self._shingle_size)
            signature = minhash_signature(shingle_set, self._num_hashes)
            partial.sketches[entity.entity_id] = (signature, shingle_set)
        return partial

    def reduce(self, partials: list[DuplicatePartial]) -> DuplicatePartial:
        merged = DuplicatePartial()
        for partial in partials:
            merged.sketches.update(partial.sketches)
        return merged

    # -- pair extraction ------------------------------------------------------------

    def pairs(self, merged: DuplicatePartial) -> list[DuplicatePair]:
        """Verified near-duplicate pairs above the threshold, sorted."""
        buckets: dict[tuple[int, tuple[int, ...]], list[str]] = {}
        for entity_id, (signature, _) in merged.sketches.items():
            for band in range(self._bands):
                key = (band, signature[band * self._rows : (band + 1) * self._rows])
                buckets.setdefault(key, []).append(entity_id)
        candidates: set[tuple[str, str]] = set()
        for bucket in buckets.values():
            if len(bucket) < 2:
                continue
            bucket.sort()
            for i, first in enumerate(bucket):
                for second in bucket[i + 1 :]:
                    candidates.add((first, second))
        out = []
        for first, second in sorted(candidates):
            similarity = jaccard(merged.sketches[first][1], merged.sketches[second][1])
            if similarity >= self._threshold:
                out.append(DuplicatePair(first, second, similarity))
        out.sort(key=lambda p: (-p.similarity, p.first, p.second))
        return out
