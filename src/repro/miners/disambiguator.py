"""The disambiguator miner: filter off-topic spots.

Wraps :class:`repro.core.disambiguation.Disambiguator`: spots that fail
the two-resolution test are *removed* from the ``spot`` layer (their
original count is preserved in the ``spots_found`` metadata key so
pipeline statistics survive).
"""

from __future__ import annotations

from ..core.disambiguation import Disambiguator
from ..obs import Obs
from ..core.entity import Entity
from ..core.mining import EntityMiner
from . import base


class DisambiguatorMiner(EntityMiner):
    """Rewrites the ``spot`` layer keeping only on-topic spots."""

    name = "disambiguator"
    requires = (base.TOKEN_LAYER, base.SENTENCE_LAYER, base.SPOT_LAYER)
    provides = (base.SPOT_LAYER,)

    def __init__(self, disambiguator: Disambiguator, obs: Obs | None = None):
        self._disambiguator = disambiguator
        self._obs = obs if obs is not None else Obs.default()

    def process(self, entity: Entity) -> None:
        sentences = base.sentences_from(entity)
        spots = base.spots_from(entity)
        result = self._disambiguator.disambiguate(
            sentences, spots, audit=self._obs.audit
        )
        entity.metadata["spots_found"] = len(spots)
        entity.metadata["spots_on_topic"] = len(result.on_topic)
        self._obs.metrics.counter("miner.spots_found").inc(len(spots))
        self._obs.metrics.counter("miner.spots_on_topic").inc(len(result.on_topic))
        entity.clear_layer(base.SPOT_LAYER)
        for spot in result.on_topic:
            base.annotate_spot(entity, spot)
