"""The sentiment miner as a platform entity miner.

Two adapters, one per operational mode:

* :class:`SentimentEntityMiner` — mode A: reads the ``spot`` layer,
  writes ``sentiment`` annotations;
* :class:`OpenSentimentEntityMiner` — mode B: reads the ``entity`` layer
  (named entities), analyzes sentiment-bearing sentences only.

Sentiment annotations span the *spot* and carry polarity in ``label``
plus provenance in attributes, so the indexer can turn them into
conceptual tokens and the :class:`~repro.platform.indexer.SentimentIndex`
can be rebuilt from stored entities alone.
"""

from __future__ import annotations

from ..core.analyzer import SentimentAnalyzer
from ..core.model import Polarity, SentimentJudgment, Spot, Subject
from ..obs import Obs
from ..obs.audit import NO_MATCH, PATTERN_MATCH
from ..core.entity import Annotation, Entity
from ..core.mining import EntityMiner
from . import base


def _audit_judgment(obs: Obs, judgment: SentimentJudgment) -> None:
    """Record why a judgment resolved the way it did."""
    if not obs.audit.enabled:
        return
    provenance = judgment.provenance
    obs.audit.record_sentiment(
        judgment.subject_name,
        judgment.polarity.value,
        PATTERN_MATCH if provenance is not None and provenance.pattern else NO_MATCH,
        document_id=judgment.spot.document_id,
        sentence_index=judgment.spot.sentence_index,
        pattern=provenance.pattern if provenance else "",
        predicate=provenance.predicate if provenance else "",
        lexicon_entries=tuple(provenance.sentiment_words) if provenance else (),
        negated=bool(provenance.negated) if provenance else False,
    )


def _annotate_judgment(entity: Entity, judgment: SentimentJudgment) -> None:
    entity.annotate(
        Annotation.make(
            base.SENTIMENT_LAYER,
            judgment.spot.start,
            judgment.spot.end,
            label=judgment.polarity.value,
            subject=judgment.subject_name,
            pattern=judgment.provenance.pattern,
            predicate=judgment.provenance.predicate,
            negated=judgment.provenance.negated,
        )
    )


def judgments_from(entity: Entity) -> list[SentimentJudgment]:
    """Rebuild judgments from a stored entity's ``sentiment`` layer."""
    judgments: list[SentimentJudgment] = []
    for annotation in entity.layer(base.SENTIMENT_LAYER):
        subject = Subject(annotation.attribute("subject", entity.text_of(annotation)))
        spot = Spot(
            subject=subject,
            term=entity.text_of(annotation),
            span=annotation.span,
            sentence_index=0,
            document_id=entity.entity_id,
        )
        judgments.append(
            SentimentJudgment(spot=spot, polarity=Polarity.from_symbol(annotation.label))
        )
    return judgments


class SentimentEntityMiner(EntityMiner):
    """Mode A: judge every spotted subject occurrence."""

    name = "sentiment-miner"
    requires = (base.TOKEN_LAYER, base.SENTENCE_LAYER, base.SPOT_LAYER)
    provides = (base.SENTIMENT_LAYER,)

    def __init__(
        self,
        analyzer: SentimentAnalyzer | None = None,
        polar_only: bool = False,
        obs: Obs | None = None,
    ):
        self._obs = obs if obs is not None else Obs.default()
        self._analyzer = analyzer or SentimentAnalyzer(obs=self._obs)
        self._polar_only = polar_only

    @property
    def analyzer(self) -> SentimentAnalyzer:
        return self._analyzer

    def process(self, entity: Entity) -> None:
        entity.clear_layer(base.SENTIMENT_LAYER)
        sentences = base.sentences_from(entity)
        spots = base.spots_from(entity)
        spots_by_sentence: dict[int, list] = {}
        for spot in spots:
            spots_by_sentence.setdefault(spot.sentence_index, []).append(spot)
        by_index = {s.index: s for s in sentences}
        for index, sentence_spots in sorted(spots_by_sentence.items()):
            sentence = by_index.get(index)
            if sentence is None:
                continue
            tagged = self._analyzer.tag(sentence)
            for judgment in self._analyzer.judge_spots(tagged, sentence_spots):
                if self._polar_only and not judgment.polarity.is_polar:
                    continue
                _audit_judgment(self._obs, judgment)
                _annotate_judgment(entity, judgment)


class OpenSentimentEntityMiner(EntityMiner):
    """Mode B: judge named entities in sentiment-bearing sentences."""

    name = "open-sentiment-miner"
    requires = (base.TOKEN_LAYER, base.SENTENCE_LAYER, base.POS_LAYER, base.ENTITY_LAYER)
    provides = (base.SENTIMENT_LAYER,)

    def __init__(self, analyzer: SentimentAnalyzer | None = None, obs: Obs | None = None):
        self._obs = obs if obs is not None else Obs.default()
        self._analyzer = analyzer or SentimentAnalyzer(obs=self._obs)

    def process(self, entity: Entity) -> None:
        entity.clear_layer(base.SENTIMENT_LAYER)
        ne_spots = [
            Spot(
                subject=Subject(a.label),
                term=entity.text_of(a),
                span=a.span,
                sentence_index=int(a.attribute("sentence", 0)),
                document_id=entity.entity_id,
            )
            for a in entity.layer(base.ENTITY_LAYER)
        ]
        if not ne_spots:
            return
        spots_by_sentence: dict[int, list[Spot]] = {}
        for spot in ne_spots:
            spots_by_sentence.setdefault(spot.sentence_index, []).append(spot)
        for tagged in base.tagged_sentences_from(entity):
            sentence_spots = spots_by_sentence.get(tagged.index)
            if not sentence_spots or not self._analyzer.bears_sentiment(tagged):
                continue
            for judgment in self._analyzer.judge_spots(tagged, sentence_spots):
                if judgment.polarity.is_polar:
                    _audit_judgment(self._obs, judgment)
                    _annotate_judgment(entity, judgment)
