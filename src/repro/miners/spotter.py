"""The spotter miner: subject-term occurrences as annotations.

"The spotter is a general purpose miner that identifies occurrences of
arbitrary terms or phrases within documents ... and tags documents that
contain them with tokens specifying where the terms appear."
"""

from __future__ import annotations

from ..core.model import Subject
from ..core.spotting import SubjectSpotter
from ..core.entity import Entity
from ..core.mining import EntityMiner
from . import base


class SpotterMiner(EntityMiner):
    """Writes the ``spot`` layer from a configured subject list."""

    name = "spotter"
    requires = (base.TOKEN_LAYER, base.SENTENCE_LAYER)
    provides = (base.SPOT_LAYER,)

    def __init__(self, subjects: list[Subject]):
        if not subjects:
            raise ValueError("the spotter needs at least one subject")
        self._spotter = SubjectSpotter(subjects)
        self._subjects_by_name = {s.canonical: s for s in subjects}

    @property
    def subjects_by_name(self) -> dict[str, Subject]:
        return dict(self._subjects_by_name)

    def process(self, entity: Entity) -> None:
        entity.clear_layer(base.SPOT_LAYER)
        sentences = base.sentences_from(entity)
        for spot in self._spotter.spot_document(sentences, entity.entity_id):
            base.annotate_spot(entity, spot)
