"""Geographic context miner (gazetteer-based).

The paper lists "geographic context extraction [McCurley 2002]" among the
entity-level miners deployed on WebFountain.  This simplified substitute
spots gazetteer place names (with a small disambiguation guard against
person-name contexts), annotates a ``geo`` layer, and records the
document's dominant region in metadata.
"""

from __future__ import annotations

from collections import Counter

from ..core.entity import Annotation, Entity
from ..core.mining import EntityMiner
from . import base

#: A small gazetteer: place -> (region, latitude, longitude).
DEFAULT_GAZETTEER_COORDS: dict[str, tuple[str, float, float]] = {
    "san jose": ("north-america", 37.34, -121.89),
    "new york": ("north-america", 40.71, -74.01),
    "chicago": ("north-america", 41.88, -87.63),
    "seattle": ("north-america", 47.61, -122.33),
    "toronto": ("north-america", 43.65, -79.38),
    "london": ("europe", 51.51, -0.13),
    "paris": ("europe", 48.86, 2.35),
    "berlin": ("europe", 52.52, 13.41),
    "zurich": ("europe", 47.37, 8.54),
    "amsterdam": ("europe", 52.37, 4.90),
    "tokyo": ("asia", 35.68, 139.69),
    "osaka": ("asia", 34.69, 135.50),
    "seoul": ("asia", 37.57, 126.98),
    "singapore": ("asia", 1.35, 103.82),
    "shanghai": ("asia", 31.23, 121.47),
    "sydney": ("oceania", -33.87, 151.21),
    "melbourne": ("oceania", -37.81, 144.96),
    "sao paulo": ("south-america", -23.55, -46.63),
    "buenos aires": ("south-america", -34.60, -58.38),
    "cairo": ("africa", 30.04, 31.24),
    "nairobi": ("africa", -1.29, 36.82),
}

#: Backwards-compatible place -> region view.
DEFAULT_GAZETTEER: dict[str, str] = {
    name: region for name, (region, _, _) in DEFAULT_GAZETTEER_COORDS.items()
}

#: Words that, directly before a hit, suggest a person rather than a place.
_PERSON_CUES = frozenset({"mr.", "mrs.", "ms.", "dr.", "prof."})


class GeographicContextMiner(EntityMiner):
    """Annotate place mentions and the document's dominant region."""

    name = "geo-context"
    requires = (base.TOKEN_LAYER, base.SENTENCE_LAYER)
    provides = ("geo",)

    def __init__(self, gazetteer: dict[str, str] | None = None):
        table = gazetteer if gazetteer is not None else DEFAULT_GAZETTEER
        self._by_tokens = {tuple(name.split()): region for name, region in table.items()}
        self._coords = {
            tuple(name.split()): (lat, lon)
            for name, (_, lat, lon) in DEFAULT_GAZETTEER_COORDS.items()
            if name in table
        }
        self._max_len = max((len(k) for k in self._by_tokens), default=1)

    def process(self, entity: Entity) -> None:
        entity.clear_layer("geo")
        regions: Counter[str] = Counter()
        for sentence in base.sentences_from(entity):
            tokens = sentence.tokens
            i = 0
            while i < len(tokens):
                match = self._match(tokens, i)
                if match is None:
                    i += 1
                    continue
                length, region = match
                if i > 0 and tokens[i - 1].lower in _PERSON_CUES:
                    i += length  # "Dr. London" is a person, not a place
                    continue
                key = tuple(tokens[i + k].lower for k in range(length))
                coords = self._coords.get(key)
                attributes = {}
                if coords is not None:
                    attributes = {"lat": coords[0], "lon": coords[1]}
                entity.annotate(
                    Annotation.make(
                        "geo",
                        tokens[i].start,
                        tokens[i + length - 1].end,
                        label=region,
                        **attributes,
                    )
                )
                regions[region] += 1
                i += length
        if regions:
            entity.metadata["geo_region"] = regions.most_common(1)[0][0]

    def _match(self, tokens, i) -> tuple[int, str] | None:
        limit = min(self._max_len, len(tokens) - i)
        for length in range(limit, 0, -1):
            if not tokens[i].is_capitalized:
                return None
            key = tuple(tokens[i + k].lower for k in range(length))
            region = self._by_tokens.get(key)
            if region is not None:
                return length, region
        return None
