"""Corpus-level feature term extraction miner.

Wraps :class:`repro.core.features.FeatureExtractor` as a WebFountain
corpus miner: the map phase extracts candidate counts per partition, the
reduce phase merges the 2×2 tables and applies the likelihood-ratio test.
Membership in D+ vs D− comes from an entity metadata field (default
``domain``): entities whose field equals the topic are D+.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..core.features import FeatureExtractionConfig, FeatureExtractor, likelihood_ratio
from ..core.model import FeatureTerm
from ..obs import Obs
from ..core.entity import Entity
from ..core.mining import CorpusMiner


@dataclass
class FeaturePartial:
    """Per-partition counts: candidate doc frequencies in D+ and D−."""

    dplus_docs: int = 0
    dminus_docs: int = 0
    dplus_df: Counter = field(default_factory=Counter)
    dminus_df: Counter = field(default_factory=Counter)


class FeatureTermMiner(CorpusMiner[FeaturePartial]):
    """Map/reduce feature extraction over stored entities.

    The reduce step returns a :class:`FeaturePartial`; call
    :meth:`score` on it to get ranked :class:`FeatureTerm` rows.
    """

    name = "feature-term-miner"

    def __init__(
        self,
        topic: str,
        config: FeatureExtractionConfig | None = None,
        domain_field: str = "domain",
        obs: Obs | None = None,
    ):
        self._topic = topic
        self._config = config or FeatureExtractionConfig()
        self._domain_field = domain_field
        self._extractor = FeatureExtractor(self._config)
        self._obs = obs if obs is not None else Obs.default()

    # -- map -----------------------------------------------------------------------------

    def map_partition(self, entities: Iterable[Entity]) -> FeaturePartial:
        partial = FeaturePartial()
        dplus_texts: list[str] = []
        dminus_texts: list[str] = []
        for entity in entities:
            if entity.metadata.get(self._domain_field) == self._topic:
                dplus_texts.append(entity.content)
            else:
                dminus_texts.append(entity.content)
        partial.dplus_docs = len(dplus_texts)
        partial.dminus_docs = len(dminus_texts)
        with self._obs.tracer.span(
            "stage.extract_features",
            dplus=partial.dplus_docs,
            dminus=partial.dminus_docs,
        ) as span:
            # Candidates come from D+ only (the paper extracts from reviews).
            candidate_sets = [
                set(self._extractor.candidate_phrases(t)) for t in dplus_texts
            ]
            candidates = set().union(*candidate_sets) if candidate_sets else set()
            for doc_candidates in candidate_sets:
                partial.dplus_df.update(doc_candidates)
            for text in dminus_texts:
                present = self._present_in(text, candidates)
                partial.dminus_df.update(present)
            span.set_attribute("candidates", len(candidates))
        self._obs.metrics.counter("features.documents").inc(
            partial.dplus_docs + partial.dminus_docs
        )
        self._obs.metrics.counter("features.candidates").inc(len(partial.dplus_df))
        return partial

    def _present_in(self, text: str, candidates: set[str]) -> set[str]:
        if not candidates:
            return set()
        lowered = " " + " ".join(text.lower().split()) + " "
        found = set()
        for candidate in candidates:
            if f" {candidate}" in lowered or f" {candidate}s" in lowered:
                found.add(candidate)
        return found

    # -- reduce ---------------------------------------------------------------------------

    def reduce(self, partials: list[FeaturePartial]) -> FeaturePartial:
        merged = FeaturePartial()
        for partial in partials:
            merged.dplus_docs += partial.dplus_docs
            merged.dminus_docs += partial.dminus_docs
            merged.dplus_df.update(partial.dplus_df)
            merged.dminus_df.update(partial.dminus_df)
        return merged

    # -- scoring -----------------------------------------------------------------------------

    def score(self, merged: FeaturePartial) -> list[FeatureTerm]:
        """Apply selection to merged counts; mirrors FeatureExtractor."""
        scored: list[FeatureTerm] = []
        for term, c11 in merged.dplus_df.items():
            if c11 < self._config.min_support:
                continue
            c12 = merged.dminus_df.get(term, 0)
            if self._config.ranker == "likelihood":
                value = likelihood_ratio(
                    c11, c12, merged.dplus_docs - c11, merged.dminus_docs - c12
                )
            else:
                value = float(c11)
            scored.append(
                FeatureTerm(term=term, score=value, dplus_count=c11, dminus_count=c12)
            )
        scored.sort(key=lambda f: (-f.score, f.term))
        if self._config.top_n is not None:
            return scored[: self._config.top_n]
        if self._config.ranker == "frequency":
            return scored
        from ..core.features import CHI2_CRITICAL

        threshold = CHI2_CRITICAL[self._config.confidence]
        return [f for f in scored if f.score > threshold]
