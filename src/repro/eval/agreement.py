"""Two-judge manual evaluation simulation for feature precision.

"The extracted feature terms were manually examined by two human
subjects and only the terms that both subjects labeled as feature terms
were counted for the computation of the precision."

The simulated judges know the domain's true feature vocabulary (the
generator's ground truth) and make small independent mistakes, so the
agreement protocol — intersecting both judges' labels — actually does
something.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..corpora.vocab import DomainVocab


@dataclass(frozen=True)
class JudgedTerm:
    """One extracted term with both judges' verdicts."""

    term: str
    is_true_feature: bool
    judge_a: bool
    judge_b: bool

    @property
    def accepted(self) -> bool:
        """Counted as a feature only when both judges agree it is one."""
        return self.judge_a and self.judge_b


class FeatureJudgePanel:
    """Two simulated judges with independent error rates."""

    def __init__(
        self,
        vocab: DomainVocab,
        seed: int = 2005,
        miss_rate: float = 0.02,
        false_accept_rate: float = 0.01,
    ):
        if not 0 <= miss_rate < 1 or not 0 <= false_accept_rate < 1:
            raise ValueError("error rates must lie in [0, 1)")
        # Judges accept number-folded variants: "lyric" counts as the
        # feature "lyrics", "batteries" as "battery".
        from ..nlp.lemmatizer import Lemmatizer

        lemmatizer = Lemmatizer()
        self._truth = set()
        for feature in vocab.features:
            lower = feature.lower()
            self._truth.add(lower)
            words = lower.split()
            words[-1] = lemmatizer.lemmatize(words[-1], "NNS")
            self._truth.add(" ".join(words))
        self._rng = random.Random(seed)
        self._miss_rate = miss_rate
        self._false_accept_rate = false_accept_rate

    def is_true_feature(self, term: str) -> bool:
        return term.lower() in self._truth

    def judge(self, terms: list[str]) -> list[JudgedTerm]:
        """Both judges label every term independently."""
        judged = []
        for term in terms:
            truth = self.is_true_feature(term)
            judged.append(
                JudgedTerm(
                    term=term,
                    is_true_feature=truth,
                    judge_a=self._one_verdict(truth),
                    judge_b=self._one_verdict(truth),
                )
            )
        return judged

    def _one_verdict(self, truth: bool) -> bool:
        roll = self._rng.random()
        if truth:
            return roll >= self._miss_rate
        return roll < self._false_accept_rate

    def precision(self, terms: list[str]) -> float:
        """The paper's protocol: accepted-by-both / extracted."""
        if not terms:
            return 0.0
        judged = self.judge(terms)
        return sum(1 for j in judged if j.accepted) / len(judged)

    def agreement_rate(self, terms: list[str]) -> float:
        """Fraction of terms on which the judges agree (sanity metric)."""
        if not terms:
            return 1.0
        judged = self.judge(terms)
        return sum(1 for j in judged if j.judge_a == j.judge_b) / len(judged)
