"""Evaluation metrics, using the paper's definitions.

"The precision was computed only on the test cases with either positive
or negative sentiment.  For the computation of the accuracy, neutral
sentiment cases were included as well."

* **precision** — among *predicted-polar* cases, the fraction whose gold
  is polar with the same sign;
* **recall** — among *gold-polar* cases, the fraction predicted with the
  correct polar sign;
* **accuracy** — over all cases (neutral included), exact label match.

This is why the miner's accuracy exceeds its precision: "the majority of
the test cases have neutral sentiment, and it correctly classifies them."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.model import Polarity
from ..corpora.gold import GoldMention

#: Evaluation case key: (lowercased subject, sentence index).
CaseKey = tuple[str, int]


@dataclass
class EvaluationCounts:
    """Raw confusion counts for one system on one dataset."""

    correct_polar: int = 0  # polar prediction, right sign
    wrong_polar: int = 0  # polar prediction, wrong sign or neutral gold
    missed_polar: int = 0  # neutral prediction on polar gold
    correct_neutral: int = 0  # neutral prediction on neutral gold

    @property
    def predicted_polar(self) -> int:
        return self.correct_polar + self.wrong_polar

    @property
    def gold_polar(self) -> int:
        polar_hits = self.correct_polar + self.missed_polar
        # wrong_polar mixes two cases; track exactly via record() instead.
        return polar_hits + self._wrong_on_polar

    @property
    def total(self) -> int:
        return (
            self.correct_polar
            + self.wrong_polar
            + self.missed_polar
            + self.correct_neutral
        )

    _wrong_on_polar: int = field(default=0, repr=False)

    def record(self, gold: Polarity, predicted: Polarity) -> None:
        """Tally one case."""
        if predicted.is_polar:
            if gold is predicted:
                self.correct_polar += 1
            else:
                self.wrong_polar += 1
                if gold.is_polar:
                    self._wrong_on_polar += 1
        else:
            if gold.is_polar:
                self.missed_polar += 1
            else:
                self.correct_neutral += 1

    # -- metrics -------------------------------------------------------------------

    @property
    def precision(self) -> float:
        if self.predicted_polar == 0:
            return 0.0
        return self.correct_polar / self.predicted_polar

    @property
    def recall(self) -> float:
        if self.gold_polar == 0:
            return 0.0
        return self.correct_polar / self.gold_polar

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.correct_polar + self.correct_neutral) / self.total

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    def merge(self, other: "EvaluationCounts") -> None:
        self.correct_polar += other.correct_polar
        self.wrong_polar += other.wrong_polar
        self.missed_polar += other.missed_polar
        self.correct_neutral += other.correct_neutral
        self._wrong_on_polar += other._wrong_on_polar


def evaluate_cases(
    gold_mentions: Iterable[GoldMention],
    predictions: dict[CaseKey, Polarity],
    exclude_kinds: frozenset[str] | set[str] = frozenset(),
) -> EvaluationCounts:
    """Score predictions against gold mentions.

    *predictions* maps (subject, sentence_index) to the predicted
    polarity; missing keys count as NEUTRAL predictions (the system
    abstained).  ``exclude_kinds`` drops gold cases of certain template
    kinds — used for the paper's "accuracy w/o I class" variant.
    """
    counts = EvaluationCounts()
    for mention in gold_mentions:
        if mention.kind in exclude_kinds:
            continue
        key = (mention.subject.lower(), mention.sentence_index)
        predicted = predictions.get(key, Polarity.NEUTRAL)
        counts.record(mention.polarity, predicted)
    return counts


def document_accuracy(
    gold_labels: list[Polarity], predicted_labels: list[Polarity]
) -> float:
    """Plain document-level accuracy (ReviewSeer's native metric)."""
    if len(gold_labels) != len(predicted_labels):
        raise ValueError("label lists must align")
    if not gold_labels:
        return 0.0
    hits = sum(1 for g, p in zip(gold_labels, predicted_labels) if g is p)
    return hits / len(gold_labels)
