"""Plain-text reporting: fixed-width tables and ASCII bar charts.

The experiment harness prints the same rows/series the paper reports;
these helpers keep the output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_percent(value: float, digits: int = 1) -> str:
    """0.856 → ``85.6%``."""
    return f"{100 * value:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule.

    Cells are stringified; numeric-looking cells right-align.
    """
    rows = [[_cell(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                c.rjust(w) if _is_numeric(c) else c.ljust(w)
                for c, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def ascii_bar_chart(
    series: Sequence[tuple[str, float]],
    width: int = 40,
    title: str | None = None,
    max_value: float | None = None,
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if width < 1:
        raise ValueError("width must be positive")
    values = [v for _, v in series]
    peak = max_value if max_value is not None else (max(values) if values else 1.0)
    peak = peak or 1.0
    label_width = max((len(label) for label, _ in series), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, value in series:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def _is_numeric(text: str) -> bool:
    stripped = text.rstrip("%x").replace(",", "")
    try:
        float(stripped)
    except ValueError:
        return False
    return True
