"""Experiment harness: one entry point per paper table/figure.

Every function is deterministic given (seed, scale) and returns a result
object with a ``render()`` method that prints the same rows/series the
paper reports.  ``scale`` shrinks dataset sizes proportionally (1.0 =
the paper's document counts); the benchmark suite uses moderate scales
so a full run stays in seconds.

Index (see DESIGN.md Section 4):

* :func:`feature_precision`  — Section 4.1 text (97% / 100%)
* :func:`table2`             — top-20 feature terms per domain
* :func:`table3`             — product vs feature reference counts
* :func:`table4`             — SM vs collocation vs ReviewSeer on reviews
* :func:`table5`             — general web/news performance
* :func:`figure1_scaling`    — platform node-scaling series
* :func:`figure2_satisfaction` — per-product × per-feature % positive
* :func:`figure3_open_subjects` — mode-B pipeline + sentiment index
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..baselines.collocation import CollocationBaseline
from ..baselines.reviewseer import ReviewSeerClassifier
from ..core.analyzer import SentimentAnalyzer
from ..core.features import FeatureExtractionConfig, FeatureExtractor
from ..core.miner import SentimentMiner
from ..core.model import Polarity, Subject
from ..corpora import datasets as corpus_datasets
from ..corpora.gold import Dataset, I_CLASS_KINDS, LabeledDocument
from ..corpora.vocab import DIGITAL_CAMERA, DOMAINS, MUSIC, PETROLEUM, PHARMACEUTICAL
from ..nlp.sentences import split_sentences
from .agreement import FeatureJudgePanel
from .metrics import CaseKey, EvaluationCounts, document_accuracy, evaluate_cases
from .reporting import ascii_bar_chart, format_percent, format_table

# ---------------------------------------------------------------------------
# shared machinery
# ---------------------------------------------------------------------------


def subjects_for(dataset: Dataset) -> list[Subject]:
    """All gold subjects in a dataset, as miner subjects."""
    names = sorted({m.subject for doc in dataset.dplus for m in doc.mentions})
    return [Subject(n) for n in names]


def _predictions_sm(
    miner: SentimentMiner, document: LabeledDocument
) -> dict[CaseKey, Polarity]:
    result = miner.mine_document(document.text, document.doc_id)
    return {
        (j.subject_name.lower(), j.spot.sentence_index): j.polarity
        for j in result.judgments
    }


def _predictions_collocation(
    baseline: CollocationBaseline, subjects: list[Subject], document: LabeledDocument
) -> dict[CaseKey, Polarity]:
    judgments = baseline.analyze_text(document.text, subjects, document.doc_id)
    return {
        (j.subject_name.lower(), j.spot.sentence_index): j.polarity for j in judgments
    }


def evaluate_system(
    dataset: Dataset,
    system: str,
    exclude_kinds: frozenset[str] = frozenset(),
    analyzer: SentimentAnalyzer | None = None,
    context_rule=None,
) -> EvaluationCounts:
    """Run ``sm`` or ``collocation`` over a dataset's D+ documents."""
    subjects = subjects_for(dataset)
    counts = EvaluationCounts()
    if system == "sm":
        miner = SentimentMiner(
            subjects=subjects,
            analyzer=analyzer or SentimentAnalyzer(),
            context_rule=context_rule,
        )
        for document in dataset.dplus:
            predictions = _predictions_sm(miner, document)
            counts.merge(evaluate_cases(document.mentions, predictions, exclude_kinds))
    elif system == "collocation":
        baseline = CollocationBaseline()
        for document in dataset.dplus:
            predictions = _predictions_collocation(baseline, subjects, document)
            counts.merge(evaluate_cases(document.mentions, predictions, exclude_kinds))
    else:
        raise ValueError(f"unknown system {system!r}")
    return counts


def _train_reviewseer(
    documents: list[LabeledDocument], neutral_margin: float = 1.0
) -> ReviewSeerClassifier:
    positive = [d.text for d in documents if d.doc_polarity is Polarity.POSITIVE]
    negative = [d.text for d in documents if d.doc_polarity is Polarity.NEGATIVE]
    classifier = ReviewSeerClassifier(neutral_margin=neutral_margin)
    classifier.train(positive, negative)
    return classifier


def _reviewseer_sentence_counts(
    classifier: ReviewSeerClassifier,
    dataset: Dataset,
    exclude_kinds: frozenset[str] = frozenset(),
) -> EvaluationCounts:
    """Sentence-level ReviewSeer evaluation over gold mention cases."""
    counts = EvaluationCounts()
    for document in dataset.dplus:
        sentences = split_sentences(document.text)
        sentence_label: dict[int, Polarity] = {}
        for mention in document.mentions:
            if mention.kind in exclude_kinds:
                continue
            index = mention.sentence_index
            if index not in sentence_label:
                if index < len(sentences):
                    text = sentences[index].text_of(document.text)
                    sentence_label[index] = classifier.classify_sentence(text)
                else:
                    sentence_label[index] = Polarity.NEUTRAL
            counts.record(mention.polarity, sentence_label[index])
    return counts


# ---------------------------------------------------------------------------
# Section 4.1: feature extraction precision (97% / 100%)
# ---------------------------------------------------------------------------


@dataclass
class FeaturePrecisionResult:
    domain: str
    precision: float
    extracted: list[str]
    dplus_docs: int
    dminus_docs: int

    def render(self) -> str:
        return format_table(
            ["domain", "extracted terms", "precision"],
            [[self.domain, len(self.extracted), format_percent(self.precision)]],
            title="Feature extraction precision (paper: 97% camera / 100% music)",
        )


def feature_precision(
    domain: str = "digital_camera", seed: int = 2005, scale: float = 0.2
) -> FeaturePrecisionResult:
    """bBNP + likelihood-ratio extraction judged by the two-judge panel."""
    dataset = corpus_datasets.review_dataset_for(domain, seed=seed, scale=scale)
    vocab = DOMAINS[domain]
    extractor = FeatureExtractor(FeatureExtractionConfig(min_support=3))
    features = extractor.extract(dataset.dplus_texts(), dataset.dminus_texts())
    terms = [f.term for f in features]
    panel = FeatureJudgePanel(vocab, seed=seed)
    return FeaturePrecisionResult(
        domain=domain,
        precision=panel.precision(terms),
        extracted=terms,
        dplus_docs=len(dataset.dplus),
        dminus_docs=len(dataset.dminus),
    )


# ---------------------------------------------------------------------------
# Table 2: top-20 feature terms per domain
# ---------------------------------------------------------------------------


@dataclass
class Table2Result:
    camera_terms: list[str]
    music_terms: list[str]
    camera_overlap: float
    music_overlap: float

    def render(self) -> str:
        rows = []
        for i in range(20):
            rows.append(
                [
                    i + 1,
                    self.camera_terms[i] if i < len(self.camera_terms) else "",
                    self.music_terms[i] if i < len(self.music_terms) else "",
                ]
            )
        table = format_table(
            ["rank", "Digital Camera", "Music Albums"],
            rows,
            title="Table 2: top 20 feature terms extracted by bBNP-L",
        )
        overlap = (
            f"overlap with the paper's published lists: camera "
            f"{format_percent(self.camera_overlap)}, music {format_percent(self.music_overlap)}"
        )
        return table + "\n" + overlap


def table2(seed: int = 2005, scale: float = 0.2) -> Table2Result:
    """Top-20 bBNP-L feature terms for both review domains."""
    config = FeatureExtractionConfig(min_support=2, top_n=20)
    out: dict[str, list[str]] = {}
    for domain in (DIGITAL_CAMERA.name, MUSIC.name):
        dataset = corpus_datasets.review_dataset_for(domain, seed=seed, scale=scale)
        extractor = FeatureExtractor(config)
        features = extractor.extract(dataset.dplus_texts(), dataset.dminus_texts())
        out[domain] = [f.term for f in features]
    from ..corpora.vocab import PAPER_CAMERA_FEATURES, PAPER_MUSIC_FEATURES

    camera_overlap = _overlap(out[DIGITAL_CAMERA.name], PAPER_CAMERA_FEATURES)
    music_overlap = _overlap(out[MUSIC.name], PAPER_MUSIC_FEATURES)
    return Table2Result(
        camera_terms=out[DIGITAL_CAMERA.name],
        music_terms=out[MUSIC.name],
        camera_overlap=camera_overlap,
        music_overlap=music_overlap,
    )


def _overlap(extracted: list[str], published: tuple[str, ...]) -> float:
    if not extracted:
        return 0.0
    published_set = {p.lower() for p in published}
    return sum(1 for t in extracted if t.lower() in published_set) / len(extracted)


# ---------------------------------------------------------------------------
# Table 3: product vs feature term references
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    product_counts: list[tuple[str, int]]
    feature_counts: list[tuple[str, int]]
    total_products: int
    total_product_refs: int
    total_features: int
    total_feature_refs: int

    @property
    def ratio(self) -> float:
        if self.total_product_refs == 0:
            return 0.0
        return self.total_feature_refs / self.total_product_refs

    def render(self) -> str:
        left = format_table(
            ["Product Names", "# of references"],
            [[n, c] for n, c in self.product_counts[:7]]
            + [[f"{self.total_products} Products", self.total_product_refs]],
        )
        right = format_table(
            ["Feature Terms", "# of references"],
            [[n, c] for n, c in self.feature_counts[:7]]
            + [[f"{self.total_features} Features", self.total_feature_refs]],
        )
        summary = (
            f"feature/product reference ratio: {self.ratio:.1f}x "
            "(paper: ~12.4x)"
        )
        return (
            "Table 3: product name vs feature term references (camera D+)\n"
            + left
            + "\n\n"
            + right
            + "\n"
            + summary
        )


def table3(seed: int = 2005, scale: float = 0.2) -> Table3Result:
    """Reference counts via the spotter over the camera D+ collection."""
    from ..core.spotting import SubjectSpotter

    dataset = corpus_datasets.camera_reviews(seed=seed, scale=scale)
    vocab = DIGITAL_CAMERA
    product_spotter = SubjectSpotter([Subject(p) for p in vocab.products])
    feature_spotter = SubjectSpotter([Subject(f) for f in vocab.features])
    product_refs: dict[str, int] = {}
    feature_refs: dict[str, int] = {}
    for document in dataset.dplus:
        sentences = split_sentences(document.text)
        for spot in product_spotter.spot_document(sentences):
            product_refs[spot.subject.canonical] = product_refs.get(spot.subject.canonical, 0) + 1
        for spot in feature_spotter.spot_document(sentences):
            feature_refs[spot.subject.canonical] = feature_refs.get(spot.subject.canonical, 0) + 1
    product_counts = sorted(product_refs.items(), key=lambda kv: -kv[1])
    feature_counts = sorted(feature_refs.items(), key=lambda kv: -kv[1])
    return Table3Result(
        product_counts=product_counts,
        feature_counts=feature_counts,
        total_products=len(product_counts),
        total_product_refs=sum(product_refs.values()),
        total_features=len(feature_counts),
        total_feature_refs=sum(feature_refs.values()),
    )


# ---------------------------------------------------------------------------
# Table 4: review-dataset comparison
# ---------------------------------------------------------------------------


@dataclass
class Table4Result:
    sm: EvaluationCounts
    collocation: EvaluationCounts
    reviewseer_accuracy: float

    def render(self) -> str:
        rows = [
            [
                "SM",
                format_percent(self.sm.precision),
                format_percent(self.sm.recall),
                format_percent(self.sm.accuracy),
            ],
            [
                "Collocation",
                format_percent(self.collocation.precision),
                format_percent(self.collocation.recall),
                "N/A",
            ],
            ["ReviewSeer", "N/A", "N/A", format_percent(self.reviewseer_accuracy)],
        ]
        table = format_table(
            ["", "Precision", "Recall", "Accuracy"],
            rows,
            title="Table 4: sentiment extraction on the product review datasets",
        )
        return table + "\n(paper: SM 87/56/85.6, Collocation 18/70, ReviewSeer 88.4)"


def table4(seed: int = 2005, scale: float = 0.2) -> Table4Result:
    """SM vs collocation vs ReviewSeer on camera + music reviews."""
    camera = corpus_datasets.camera_reviews(seed=seed, scale=scale)
    music = corpus_datasets.music_reviews(seed=seed, scale=scale)

    sm = evaluate_system(camera, "sm")
    sm.merge(evaluate_system(music, "sm"))
    collocation = evaluate_system(camera, "collocation")
    collocation.merge(evaluate_system(music, "collocation"))

    # ReviewSeer: document-level accuracy on held-out reviews (its native
    # task, matching the paper's 88.4%).
    rng = random.Random(seed)
    doc_labels: list[Polarity] = []
    doc_predictions: list[Polarity] = []
    for dataset in (camera, music):
        # Stratified 70/30 split so tiny test scales keep both classes.
        positive = [d for d in dataset.dplus if d.doc_polarity is Polarity.POSITIVE]
        negative = [d for d in dataset.dplus if d.doc_polarity is Polarity.NEGATIVE]
        rng.shuffle(positive)
        rng.shuffle(negative)
        train_docs: list[LabeledDocument] = []
        test_docs: list[LabeledDocument] = []
        for group in (positive, negative):
            split = max(1, int(0.7 * len(group))) if group else 0
            train_docs.extend(group[:split])
            test_docs.extend(group[split:])
        if not test_docs or not any(
            d.doc_polarity is Polarity.POSITIVE for d in train_docs
        ) or not any(d.doc_polarity is Polarity.NEGATIVE for d in train_docs):
            train_docs, test_docs = list(dataset.dplus), list(dataset.dplus)
        classifier = _train_reviewseer(train_docs)
        for document in test_docs:
            doc_labels.append(document.doc_polarity)
            doc_predictions.append(classifier.classify_document(document.text))
    return Table4Result(
        sm=sm,
        collocation=collocation,
        reviewseer_accuracy=document_accuracy(doc_labels, doc_predictions),
    )


# ---------------------------------------------------------------------------
# Table 5: general web documents and news
# ---------------------------------------------------------------------------


@dataclass
class Table5Row:
    label: str
    sm_precision: float
    sm_accuracy: float


@dataclass
class Table5Result:
    rows: list[Table5Row]
    reviewseer_accuracy: float
    reviewseer_accuracy_no_i: float
    i_class_fraction: float

    def render(self) -> str:
        body = [
            [r.label, format_percent(r.sm_precision), format_percent(r.sm_accuracy), "N/A"]
            for r in self.rows
        ]
        body.append(
            [
                "ReviewSeer (Web)",
                "N/A",
                format_percent(self.reviewseer_accuracy),
                format_percent(self.reviewseer_accuracy_no_i),
            ]
        )
        table = format_table(
            ["", "Precision", "Accuracy", "Acc. w/o I class"],
            body,
            title="Table 5: performance on general web documents and news",
        )
        note = (
            f"I-class fraction of subject mentions: {format_percent(self.i_class_fraction)} "
            "(paper: 60%-90%) | paper: SM P 86-91 / Acc 90-93, ReviewSeer 38 (68 w/o I)"
        )
        return table + "\n" + note


def table5(seed: int = 2005, scale: float = 0.2) -> Table5Result:
    """SM and ReviewSeer on petroleum/pharma web pages and news."""
    corpora = [
        ("SM (Petroleum, Web)", corpus_datasets.petroleum_web(seed=seed, scale=scale)),
        ("SM (Pharmaceutical, Web)", corpus_datasets.pharmaceutical_web(seed=seed, scale=scale)),
        ("SM (Petroleum, News)", corpus_datasets.petroleum_news(seed=seed, scale=scale)),
    ]
    rows = []
    mention_total = 0
    mention_i_class = 0
    for label, dataset in corpora:
        counts = evaluate_system(dataset, "sm")
        rows.append(
            Table5Row(
                label=label,
                sm_precision=counts.precision,
                sm_accuracy=counts.accuracy,
            )
        )
        for document in dataset.dplus:
            for mention in document.mentions:
                mention_total += 1
                if mention.is_i_class:
                    mention_i_class += 1

    # ReviewSeer, sentence-level, on the petroleum web corpus; trained on
    # same-domain pseudo-reviews (its best case).
    from ..corpora.reviews import ReviewGenerator

    train_docs = ReviewGenerator(PETROLEUM, seed=seed + 17).generate_dplus(
        max(20, int(100 * scale))
    )
    classifier = _train_reviewseer(train_docs)
    web = corpora[0][1]
    rs = _reviewseer_sentence_counts(classifier, web)
    rs_no_i = _reviewseer_sentence_counts(classifier, web, exclude_kinds=frozenset(I_CLASS_KINDS))
    return Table5Result(
        rows=rows,
        reviewseer_accuracy=rs.accuracy,
        reviewseer_accuracy_no_i=rs_no_i.accuracy,
        i_class_fraction=mention_i_class / mention_total if mention_total else 0.0,
    )


# ---------------------------------------------------------------------------
# Extension: per-template-kind error analysis (not in the paper)
# ---------------------------------------------------------------------------


@dataclass
class ErrorAnalysisResult:
    """SM outcome distribution per gold template kind.

    Not a paper table — an extension that verifies the corpus design:
    each template kind should fail (or succeed) for its designed reason.
    """

    #: kind -> {"correct": n, "wrong_polar": n, "missed": n, "neutral_ok": n}
    by_kind: dict[str, dict[str, int]]

    def rate(self, kind: str, outcome: str) -> float:
        bucket = self.by_kind.get(kind, {})
        total = sum(bucket.values())
        return bucket.get(outcome, 0) / total if total else 0.0

    def render(self) -> str:
        rows = []
        for kind in sorted(self.by_kind):
            bucket = self.by_kind[kind]
            total = sum(bucket.values())
            rows.append(
                [
                    kind,
                    total,
                    format_percent(self.rate(kind, "correct")),
                    format_percent(self.rate(kind, "wrong_polar")),
                    format_percent(self.rate(kind, "missed")),
                    format_percent(self.rate(kind, "neutral_ok")),
                ]
            )
        return format_table(
            ["gold kind", "cases", "correct polar", "wrong polar", "missed", "correct neutral"],
            rows,
            title="Error analysis: miner outcome by template kind (extension)",
        )


def error_analysis(seed: int = 2005, scale: float = 0.2) -> ErrorAnalysisResult:
    """SM outcomes broken down by the gold template kind."""
    dataset = corpus_datasets.camera_reviews(seed=seed, scale=scale)
    miner = SentimentMiner(subjects=subjects_for(dataset))
    by_kind: dict[str, dict[str, int]] = {}
    for document in dataset.dplus:
        predictions = _predictions_sm(miner, document)
        for mention in document.mentions:
            key = (mention.subject.lower(), mention.sentence_index)
            predicted = predictions.get(key, Polarity.NEUTRAL)
            bucket = by_kind.setdefault(
                mention.kind,
                {"correct": 0, "wrong_polar": 0, "missed": 0, "neutral_ok": 0},
            )
            if mention.polarity.is_polar:
                if predicted is mention.polarity:
                    bucket["correct"] += 1
                elif predicted.is_polar:
                    bucket["wrong_polar"] += 1
                else:
                    bucket["missed"] += 1
            else:
                if predicted.is_polar:
                    bucket["wrong_polar"] += 1
                else:
                    bucket["neutral_ok"] += 1
    return ErrorAnalysisResult(by_kind=by_kind)


# ---------------------------------------------------------------------------
# Figure 1: platform architecture / node scaling
# ---------------------------------------------------------------------------


@dataclass
class Figure1Result:
    ingestion_per_source: dict[str, int]
    scaling: list[tuple[int, float, float]]  # (nodes, makespan, speedup)

    def render(self) -> str:
        source_table = format_table(
            ["source", "documents"],
            sorted(self.ingestion_per_source.items()),
            title="Figure 1: multi-source ingestion into the data store",
        )
        chart = ascii_bar_chart(
            [(f"{n} nodes", speedup) for n, _, speedup in self.scaling],
            title="cluster speedup vs nodes (simulated work units)",
        )
        return source_table + "\n\n" + chart


def figure1_scaling(seed: int = 2005, scale: float = 0.2) -> Figure1Result:
    """Ingest a mixed corpus, run the pipeline at 1/2/4/8 nodes."""
    from ..corpora.reviews import ReviewGenerator
    from ..miners import PosTaggerMiner, SentimentEntityMiner, SpotterMiner, TokenizerMiner
    from ..platform import (
        BulletinBoardIngestor,
        Cluster,
        CustomerDataIngestor,
        DataStore,
        IngestionManager,
        MinerPipeline,
        NewsFeedIngestor,
    )

    generator = ReviewGenerator(DIGITAL_CAMERA, seed=seed)
    reviews = generator.generate_dplus(max(8, int(80 * scale)))
    news = [(d.doc_id, d.text, "2004-06-01") for d in reviews[: len(reviews) // 4]]
    threads = [("cameras", [d.text]) for d in reviews[len(reviews) // 4 : len(reviews) // 2]]
    customers = [{"account": i, "comment": d.text} for i, d in enumerate(reviews[len(reviews) // 2 :])]

    ingestion_counts: dict[str, int] = {}
    scaling: list[tuple[int, float, float]] = []
    for nodes in (1, 2, 4, 8):
        store = DataStore(num_partitions=8)
        manager = IngestionManager(store)
        manager.add_source(NewsFeedIngestor(news))
        manager.add_source(BulletinBoardIngestor(threads))
        manager.add_source(CustomerDataIngestor(customers))
        report = manager.ingest()
        ingestion_counts = dict(report.per_source)
        pipeline = MinerPipeline(
            [
                TokenizerMiner(),
                PosTaggerMiner(),
                SpotterMiner([Subject(p) for p in DIGITAL_CAMERA.products]),
                SentimentEntityMiner(),
            ]
        )
        cluster = Cluster(store, num_nodes=nodes)
        run = cluster.run_pipeline(pipeline)
        scaling.append((nodes, run.makespan, run.speedup))
    return Figure1Result(ingestion_per_source=ingestion_counts, scaling=scaling)


# ---------------------------------------------------------------------------
# Figure 2 inset: digital camera customer satisfaction chart
# ---------------------------------------------------------------------------


@dataclass
class Figure2Result:
    #: product -> feature -> % of polar judgments that are positive
    satisfaction: dict[str, dict[str, float]]
    features: list[str]

    def render(self) -> str:
        headers = ["product"] + self.features
        rows = []
        for product, by_feature in self.satisfaction.items():
            rows.append(
                [product]
                + [
                    format_percent(by_feature[f]) if f in by_feature else "-"
                    for f in self.features
                ]
            )
        return format_table(
            headers,
            rows,
            title="Figure 2 (inset): Digital Camera Customer Satisfaction — % positive",
        )


def figure2_satisfaction(
    seed: int = 2005,
    scale: float = 0.2,
    features: tuple[str, ...] = ("picture quality", "battery", "flash"),
    max_products: int = 7,
) -> Figure2Result:
    """Mode-A mining aggregated per product × feature (the paper's inset
    bar chart: % of pages with positive sentiment per product/feature)."""
    dataset = corpus_datasets.camera_reviews(seed=seed, scale=scale)
    vocab = DIGITAL_CAMERA
    subjects = [Subject(p) for p in vocab.products] + [Subject(f) for f in features]
    miner = SentimentMiner(subjects=subjects)
    per_product: dict[str, dict[str, list[int]]] = {}
    for document in dataset.dplus:
        result = miner.mine_document(document.text, document.doc_id)
        # The document's product is its most-mentioned product subject.
        product_names = {p for p in vocab.products}
        product_mentions = [j for j in result.judgments if j.subject_name in product_names]
        if not product_mentions:
            continue
        product = product_mentions[0].subject_name
        bucket = per_product.setdefault(product, {f: [0, 0] for f in features})
        for judgment in result.judgments:
            name = judgment.subject_name
            if name in bucket and judgment.polarity.is_polar:
                bucket[name][1] += 1
                if judgment.polarity is Polarity.POSITIVE:
                    bucket[name][0] += 1
    satisfaction: dict[str, dict[str, float]] = {}
    ranked = sorted(per_product, key=lambda p: -sum(v[1] for v in per_product[p].values()))
    for product in ranked[:max_products]:
        satisfaction[product] = {
            feature: (positive / total if total else 0.0)
            for feature, (positive, total) in per_product[product].items()
        }
    return Figure2Result(satisfaction=satisfaction, features=list(features))


# ---------------------------------------------------------------------------
# Figure 3: open-subject pipeline + sentiment index
# ---------------------------------------------------------------------------


@dataclass
class Figure3Result:
    indexed_judgments: int
    subjects_discovered: int
    top_subjects: list[tuple[str, int, int]]  # (subject, positive, negative)
    query_results: dict[str, dict[str, int]]

    def render(self) -> str:
        rows = [[s, p, n] for s, p, n in self.top_subjects]
        return format_table(
            ["subject", "positive", "negative"],
            rows,
            title="Figure 3: open-subject mining — sentiment index contents",
        )


def figure3_open_subjects(seed: int = 2005, scale: float = 0.2) -> Figure3Result:
    """Mode B over the pharma web corpus, indexed for query-time use."""
    from ..platform.indexer import SentimentIndex

    dataset = corpus_datasets.pharmaceutical_web(seed=seed, scale=scale)
    miner = SentimentMiner()
    index = SentimentIndex()
    for document in dataset.dplus:
        result = miner.mine_open_document(document.text, document.doc_id)
        index.add_all(result.judgments)
    top = []
    for subject in index.subjects()[:10]:
        counts = index.counts(subject)
        top.append((subject, counts[Polarity.POSITIVE], counts[Polarity.NEGATIVE]))
    queries = {}
    for company in PHARMACEUTICAL.products[:3]:
        counts = index.counts(company)
        queries[company] = {
            "positive": counts[Polarity.POSITIVE],
            "negative": counts[Polarity.NEGATIVE],
        }
    return Figure3Result(
        indexed_judgments=len(index),
        subjects_discovered=len(index.subjects()),
        top_subjects=top,
        query_results=queries,
    )
