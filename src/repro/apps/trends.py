"""Market trend tracking: sentiment time series per subject.

The reputation application in the paper "enables various analyses for
corporate customers, including ... tracking of market trends."  This
module buckets sentiment judgments by a document date (taken from entity
metadata) and reports per-period positive/negative counts, satisfaction,
and a simple direction verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.model import Polarity, SentimentJudgment
from ..eval.reporting import ascii_bar_chart, format_table


@dataclass(frozen=True)
class TrendPoint:
    """Aggregated sentiment for one subject in one period."""

    period: str
    positive: int
    negative: int

    @property
    def total(self) -> int:
        return self.positive + self.negative

    @property
    def satisfaction(self) -> float:
        if self.total == 0:
            return 0.0
        return self.positive / self.total


@dataclass
class TrendSeries:
    """A subject's sentiment trajectory over ordered periods."""

    subject: str
    points: list[TrendPoint] = field(default_factory=list)

    @property
    def direction(self) -> str:
        """"improving" / "declining" / "flat" over the observed periods.

        Compares mean satisfaction of the first and last halves of the
        series (periods with no polar mentions are skipped).
        """
        observed = [p for p in self.points if p.total > 0]
        if len(observed) < 2:
            return "flat"
        half = len(observed) // 2
        early = sum(p.satisfaction for p in observed[:half]) / half
        late = sum(p.satisfaction for p in observed[half:]) / (len(observed) - half)
        if late - early > 0.05:
            return "improving"
        if early - late > 0.05:
            return "declining"
        return "flat"

    def render(self) -> str:
        chart = ascii_bar_chart(
            [(p.period, round(100 * p.satisfaction, 1)) for p in self.points],
            title=f"{self.subject}: satisfaction by period ({self.direction})",
            max_value=100.0,
        )
        table = format_table(
            ["period", "positive", "negative"],
            [[p.period, p.positive, p.negative] for p in self.points],
        )
        return chart + "\n" + table


class TrendTracker:
    """Accumulate judgments with dates; emit per-subject series.

    ``period_of`` controls bucketing; the default truncates ISO dates to
    the month (``2004-06-15`` → ``2004-06``).
    """

    def __init__(self, period_length: int = 7):
        if period_length < 1:
            raise ValueError("period_length must be positive")
        self._period_length = period_length
        self._counts: dict[str, dict[str, list[int]]] = {}

    def period_of(self, date: str) -> str:
        """Truncate an ISO-ish date string to the period key."""
        return date[: self._period_length]

    def add(self, judgment: SentimentJudgment, date: str) -> None:
        """Record one judgment observed on *date* (ignores neutrals)."""
        if not judgment.polarity.is_polar:
            return
        period = self.period_of(date)
        subject = judgment.subject_name
        bucket = self._counts.setdefault(subject, {}).setdefault(period, [0, 0])
        if judgment.polarity is Polarity.POSITIVE:
            bucket[0] += 1
        else:
            bucket[1] += 1

    def add_all(self, judgments: Iterable[tuple[SentimentJudgment, str]]) -> int:
        count = 0
        for judgment, date in judgments:
            before = self._total_for(judgment.subject_name)
            self.add(judgment, date)
            count += self._total_for(judgment.subject_name) - before
        return count

    def _total_for(self, subject: str) -> int:
        return sum(
            sum(bucket) for bucket in self._counts.get(subject, {}).values()
        )

    def subjects(self) -> list[str]:
        return sorted(self._counts)

    def series(self, subject: str) -> TrendSeries:
        """The subject's full series, periods in ascending order."""
        periods = self._counts.get(subject, {})
        points = [
            TrendPoint(period=period, positive=pos, negative=neg)
            for period, (pos, neg) in sorted(periods.items())
        ]
        return TrendSeries(subject=subject, points=points)

    def movers(self) -> list[tuple[str, str]]:
        """Subjects with a non-flat direction, alphabetical."""
        out = []
        for subject in self.subjects():
            direction = self.series(subject).direction
            if direction != "flat":
                out.append((subject, direction))
        return out
