"""End-user applications built on the platform (the paper's use case)."""

from .reputation import ReputationManager, ReputationSummary
from .trends import TrendPoint, TrendSeries, TrendTracker

__all__ = [
    "ReputationManager",
    "ReputationSummary",
    "TrendPoint",
    "TrendSeries",
    "TrendTracker",
]
