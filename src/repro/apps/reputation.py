"""The reputation management application (the paper's proof of concept).

"For a proof of concept, a reputation management application has been
built on the WebFountain platform that enables various analyses for
corporate customers, including analysis on their corporate and product
reputation, and tracking of market trends."

The application owns a full platform stack: it ingests documents, runs
the mode-A miner pipeline on the simulated cluster, builds the text and
sentiment indices, registers the hosted services, and renders the two
GUI views of Figures 4 and 5:

* a per-product sentiment summary (Figure 4's masked product list);
* a sentiment-bearing sentence listing per subject (Figure 5).

Product names can be masked ("Product A", "Product B", ...) exactly as
the paper's screenshots mask them.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Iterable

from ..core.analyzer import SentimentAnalyzer
from ..core.disambiguation import Disambiguator
from ..core.model import Polarity, Subject
from ..miners import (
    DisambiguatorMiner,
    PosTaggerMiner,
    SentimentEntityMiner,
    SpotterMiner,
    TokenizerMiner,
    judgments_from,
)
from ..platform.cluster import Cluster
from ..platform.datastore import DataStore
from ..platform.entity import Entity
from ..platform.indexer import InvertedIndex, SentimentIndex
from ..platform.miners import MinerPipeline
from ..platform.services import register_services
from ..platform.vinci import VinciBus
from ..eval.reporting import ascii_bar_chart, format_percent, format_table


@dataclass
class ReputationSummary:
    """Aggregated sentiment for one subject."""

    subject: str
    positive: int
    negative: int

    @property
    def total(self) -> int:
        return self.positive + self.negative

    @property
    def satisfaction(self) -> float:
        """Fraction of polar mentions that are positive."""
        if self.total == 0:
            return 0.0
        return self.positive / self.total


class ReputationManager:
    """End-to-end reputation tracking over the simulated platform."""

    def __init__(
        self,
        subjects: list[Subject],
        analyzer: SentimentAnalyzer | None = None,
        disambiguator: Disambiguator | None = None,
        num_partitions: int = 8,
        num_nodes: int = 4,
    ):
        if not subjects:
            raise ValueError("reputation tracking needs at least one subject")
        self._subjects = list(subjects)
        self._analyzer = analyzer or SentimentAnalyzer()
        self._disambiguator = disambiguator
        self._store = DataStore(num_partitions=num_partitions)
        self._num_nodes = num_nodes
        self._bus = VinciBus()
        self._index = InvertedIndex()
        self._sentiment_index = SentimentIndex()
        self._built = False

    # -- construction ---------------------------------------------------------------

    @property
    def store(self) -> DataStore:
        return self._store

    @property
    def bus(self) -> VinciBus:
        return self._bus

    @property
    def sentiment_index(self) -> SentimentIndex:
        return self._sentiment_index

    def load_documents(self, documents: Iterable[tuple[str, str]]) -> int:
        """Store ``(doc_id, text)`` pairs."""
        count = 0
        for doc_id, text in documents:
            self._store.store(Entity(entity_id=doc_id, content=text))
            count += 1
        self._store.flush()
        return count

    def discover_feature_subjects(
        self,
        background_texts: Iterable[str],
        top_n: int = 20,
        min_support: int = 2,
    ) -> list[Subject]:
        """Auto-register feature terms as tracked subjects.

        "Feature terms of the subject terms can be given by the
        end-users or automatically identified by the feature extractor."
        Runs bBNP + likelihood-ratio extraction with the loaded documents
        as D+ and *background_texts* as D−; newly found terms become
        subjects for the next :meth:`build`.
        """
        from ..core.features import FeatureExtractionConfig, FeatureExtractor

        if self._built:
            raise RuntimeError("discover features before build()")
        dplus = [entity.content for entity in self._store.scan()]
        extractor = FeatureExtractor(
            FeatureExtractionConfig(min_support=min_support, top_n=top_n)
        )
        existing = {s.canonical.lower() for s in self._subjects}
        added: list[Subject] = []
        for feature in extractor.extract(dplus, list(background_texts)):
            if feature.term.lower() in existing:
                continue
            subject = Subject(feature.term)
            self._subjects.append(subject)
            added.append(subject)
        return added

    def build(self) -> None:
        """Run the Figure-2 pipeline on the cluster and build indices."""
        miners = [
            TokenizerMiner(),
            PosTaggerMiner(self._analyzer.tagger),
            SpotterMiner(self._subjects),
        ]
        if self._disambiguator is not None:
            miners.append(DisambiguatorMiner(self._disambiguator))
        miners.append(SentimentEntityMiner(self._analyzer))
        pipeline = MinerPipeline(miners)
        cluster = Cluster(self._store, num_nodes=self._num_nodes, bus=self._bus)
        cluster.run_pipeline(pipeline)
        self._index = InvertedIndex()
        self._sentiment_index = SentimentIndex()
        for entity in self._store.scan():
            self._index.add_entity(entity)
            self._sentiment_index.add_all(judgments_from(entity))
        register_services(self._bus, self._store, self._index, self._sentiment_index)
        self._built = True

    # -- queries -----------------------------------------------------------------------

    def summary(self, subject: str) -> ReputationSummary:
        self._require_built()
        counts = self._sentiment_index.counts(subject)
        return ReputationSummary(
            subject=subject,
            positive=counts[Polarity.POSITIVE],
            negative=counts[Polarity.NEGATIVE],
        )

    def summaries(self) -> list[ReputationSummary]:
        """One summary per tracked subject, most-mentioned first."""
        self._require_built()
        out = [self.summary(s.canonical) for s in self._subjects]
        out.sort(key=lambda s: -s.total)
        return out

    def sentences(self, subject: str, polarity: str | None = None, limit: int = 10) -> list[dict]:
        """The Figure-5 listing through the hosted service."""
        self._require_built()
        payload = {"subject": subject, "limit": limit}
        if polarity:
            payload["polarity"] = polarity
        return self._bus.request("sentiment.sentences", payload)["data"]["rows"]

    # -- rendering ----------------------------------------------------------------------

    def render_product_summary(self, mask_names: bool = False) -> str:
        """Figure 4: per-product sentiment counts, optionally masked."""
        summaries = self.summaries()
        rows = []
        for i, summary in enumerate(summaries):
            name = _masked_name(i) if mask_names else summary.subject
            rows.append(
                [
                    name,
                    summary.positive,
                    summary.negative,
                    format_percent(summary.satisfaction),
                ]
            )
        return format_table(
            ["product", "positive", "negative", "satisfaction"],
            rows,
            title="Reputation summary (Figure 4)",
        )

    def render_sentences(self, subject: str, limit: int = 10) -> str:
        """Figure 5: sentiment-bearing sentences for one subject."""
        rows = [
            [row["polarity"], row["sentence"]]
            for row in self.sentences(subject, limit=limit)
        ]
        return format_table(
            ["polarity", "sentence"],
            rows,
            title=f"Sentiment-bearing sentences for {subject!r} (Figure 5)",
        )

    def render_satisfaction_chart(self, subjects: list[str] | None = None) -> str:
        """Figure 2 inset: satisfaction bars per subject."""
        self._require_built()
        names = subjects or [s.canonical for s in self._subjects]
        series = [
            (name, round(100 * self.summary(name).satisfaction, 1)) for name in names
        ]
        return ascii_bar_chart(
            series, title="Customer satisfaction (% positive mentions)", max_value=100.0
        )

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("call build() after load_documents() first")


def _masked_name(index: int) -> str:
    """Mask as the paper's screenshots do: Product A, Product B, ..."""
    letters = string.ascii_uppercase
    if index < len(letters):
        return f"Product {letters[index]}"
    return f"Product {index + 1}"
