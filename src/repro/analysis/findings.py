"""Finding and severity model for the ``repro lint`` static analyzer.

A :class:`Finding` is one violation of one rule, anchored to a location:
a source file and line for code rules, or a pseudo-path such as
``<pattern-db>`` with an entry index for data rules.  Severities are
ordered so a report's exit code is simply the maximum severity among its
unsuppressed findings (0 = clean, 1 = warnings, 2 = errors).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Ordered severity levels; the integer value doubles as exit code."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass
class Finding:
    """One rule violation.

    ``path`` is repo-relative for code findings (``src/repro/...``) or a
    pseudo-path (``<pattern-db>``, ``<lexicon>``) for data findings;
    ``line`` is the 1-based source line or data-entry index (0 when not
    applicable).  ``suppressed``/``suppression_reason`` are filled in by
    the engine when a suppression-config entry matches.
    """

    rule: str
    severity: Severity
    message: str
    path: str = ""
    line: int = 0
    suppressed: bool = field(default=False, compare=False)
    suppression_reason: str = field(default="", compare=False)

    @property
    def location(self) -> str:
        if self.line:
            return f"{self.path}:{self.line}"
        return self.path or "<global>"

    def render(self) -> str:
        text = f"{self.location}: {self.severity}: [{self.rule}] {self.message}"
        if self.suppressed:
            text += f"  (suppressed: {self.suppression_reason})"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }
