"""Rule engine for ``repro lint``.

The engine walks a set of python files, parses each once, and hands the
AST to every :class:`CodeRule` whose scope covers the file; then it
builds the whole-program model (:mod:`repro.analysis.program`) from the
per-file summaries and hands it to every :class:`ProgramRule`
(interprocedural invariants — resource pairing, deadline propagation,
dead symbols); finally it runs every :class:`DataRule` (pattern-database
and lexicon invariants, which need no files at all).  Findings pass
through the :class:`~repro.analysis.suppressions.SuppressionConfig`;
unsuppressed findings determine the exit code (max severity).

Parsing, per-file rule findings, and module summaries are cached by
source content hash (:mod:`repro.analysis.cache`): a warm run over an
unchanged tree re-analyzes nothing (``LintReport.files_reanalyzed`` is
0) and only re-runs the cheap program/data passes over cached
summaries.

The framework is dependency-free: stdlib ``ast`` + ``fnmatch`` only.
"""

from __future__ import annotations

import abc
import ast
import fnmatch
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .cache import LintCache, rule_fingerprint
from .findings import Finding, Severity
from .program import Program, build_program, content_digest, summarize_module
from .suppressions import SuppressionConfig, Suppression


class Rule(abc.ABC):
    """Base class: one named invariant with a default severity."""

    #: Stable id used in reports and suppression entries (e.g. ``DET001``).
    rule_id: str = "RULE000"
    #: Short human name (kebab-case).
    name: str = "rule"
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line statement of the invariant the rule protects.
    invariant: str = ""

    def finding(self, message: str, path: str = "", line: int = 0,
                severity: Severity | None = None) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity if severity is None else severity,
            message=message,
            path=path,
            line=line,
        )


class CodeRule(Rule):
    """A rule that inspects one parsed module at a time.

    ``scope`` is a tuple of fnmatch globs applied to the module path
    normalised to start at the ``repro`` package root (e.g.
    ``repro/platform/vinci.py``); files outside the scope are skipped.
    """

    scope: tuple[str, ...] = ("repro/*", "repro/*.py")

    def applies_to(self, modpath: str) -> bool:
        return any(fnmatch.fnmatch(modpath, pattern) for pattern in self.scope)

    @abc.abstractmethod
    def check(self, path: str, modpath: str, tree: ast.Module) -> Iterator[Finding]:
        """Yield findings for one module (``path`` is the display path)."""


class DataRule(Rule):
    """A rule over in-memory data tables (pattern DB, lexicons)."""

    @abc.abstractmethod
    def check(self) -> Iterator[Finding]:
        """Yield findings over the rule's (injectable) data tables."""


class ProgramRule(Rule):
    """A rule over the whole-program model (interprocedural).

    ``scope`` limits which modules a rule *reports on* — the program it
    queries always covers every linted file, so cross-module evidence is
    never scoped away.  Findings must be yielded in a deterministic
    order (sort by path, then line).
    """

    scope: tuple[str, ...] = ("repro/*", "repro/*.py")

    def applies_to(self, modpath: str) -> bool:
        return any(fnmatch.fnmatch(modpath, pattern) for pattern in self.scope)

    @abc.abstractmethod
    def check(self, program: Program) -> Iterator[Finding]:
        """Yield findings over the whole program."""


#: Rule id used for engine-level findings (parse failures, stale config).
ENGINE_RULE = "LINT001"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: int = 0
    #: Files parsed and rule-checked this run (cache misses); a warm run
    #: over an unchanged tree reports 0.
    files_reanalyzed: int = 0

    def unsuppressed(self, min_severity: Severity = Severity.INFO) -> list[Finding]:
        return [
            f
            for f in self.findings
            if not f.suppressed and f.severity >= min_severity
        ]

    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def max_severity(self) -> Severity | None:
        live = self.unsuppressed()
        return max((f.severity for f in live), default=None)

    def exit_code(self, min_severity: Severity = Severity.INFO) -> int:
        """0 clean, 1 warnings, 2 errors — over unsuppressed findings."""
        live = self.unsuppressed(min_severity)
        if not live:
            return 0
        return int(max(f.severity for f in live))

    # -- rendering ---------------------------------------------------------------

    def render(self, min_severity: Severity = Severity.INFO,
               show_suppressed: bool = False) -> str:
        lines = []
        for finding in sorted(
            self.unsuppressed(min_severity),
            key=lambda f: (-int(f.severity), f.path, f.line, f.rule),
        ):
            lines.append(finding.render())
        if show_suppressed:
            for finding in self.suppressed():
                lines.append(finding.render())
        live = self.unsuppressed(min_severity)
        counts = {s: sum(1 for f in live if f.severity == s) for s in Severity}
        summary = (
            f"checked {self.files_checked} files, {self.rules_run} rules: "
            f"{counts[Severity.ERROR]} errors, {counts[Severity.WARNING]} warnings, "
            f"{counts[Severity.INFO]} info, {len(self.suppressed())} suppressed"
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "files_reanalyzed": self.files_reanalyzed,
            "rules_run": self.rules_run,
            "exit_code": self.exit_code(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _module_path(path: Path) -> str:
    """Normalise *path* to start at the ``repro`` package root.

    ``/root/repo/src/repro/platform/vinci.py`` → ``repro/platform/vinci.py``.
    Paths outside a ``repro`` tree are returned as-is (posix), so scope
    globs simply never match them.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.as_posix()


def _iter_python_files(roots: Iterable[Path]) -> Iterator[Path]:
    for root in roots:
        if root.is_dir():
            yield from sorted(root.rglob("*.py"))
        elif root.suffix == ".py":
            yield root


class Linter:
    """Runs code, program and data rules; caches per-file work by digest."""

    def __init__(
        self,
        code_rules: Iterable[CodeRule] = (),
        data_rules: Iterable[DataRule] = (),
        suppressions: SuppressionConfig | None = None,
        program_rules: Iterable[ProgramRule] = (),
        cache_path: str | Path | None = None,
    ):
        self.code_rules = list(code_rules)
        self.data_rules = list(data_rules)
        self.program_rules = list(program_rules)
        self.suppressions = suppressions if suppressions is not None else SuppressionConfig()
        self.cache_path = cache_path
        #: The program model built by the most recent :meth:`lint` call
        #: (``--graph-out`` and ``--changed-only`` read it back).
        self.last_program: Program | None = None

    def _check_file(
        self, display: str, modpath: str, raw: bytes, digest: str
    ) -> tuple[object | None, list[Finding]]:
        """Parse + summarize + per-file rules for one cache miss."""
        try:
            tree = ast.parse(raw.decode("utf-8"), filename=display)
        except SyntaxError as exc:
            return None, [
                Finding(
                    rule=ENGINE_RULE,
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                    path=display,
                    line=exc.lineno or 0,
                )
            ]
        summary = summarize_module(modpath, display, tree, digest)
        findings = [
            finding
            for rule in self.code_rules
            if rule.applies_to(modpath)
            for finding in rule.check(display, modpath, tree)
        ]
        return summary, findings

    def lint(
        self,
        paths: Iterable[str | Path],
        restrict_to: set[str] | None = None,
    ) -> LintReport:
        """Lint *paths*; with *restrict_to*, report findings only for
        those module paths (the whole program is still summarized, so
        interprocedural evidence is never lost — only reporting narrows).
        """
        report = LintReport(
            rules_run=len(self.code_rules)
            + len(self.data_rules)
            + len(self.program_rules)
        )
        cache = LintCache(self.cache_path, rule_fingerprint(self.code_rules))
        summaries = []
        seen: set[str] = set()
        reported_displays: set[str] = set()
        for path in _iter_python_files(Path(p) for p in paths):
            display = path.as_posix()
            modpath = _module_path(path)
            if modpath in seen:
                continue
            seen.add(modpath)
            report.files_checked += 1
            raw = path.read_bytes()
            digest = content_digest(raw)
            cached = cache.lookup(modpath, digest, display)
            if cached is not None:
                summary, findings = cached
            else:
                report.files_reanalyzed += 1
                summary, findings = self._check_file(display, modpath, raw, digest)
                cache.store(modpath, digest, summary, findings)
            if summary is not None:
                summaries.append(summary)
            if restrict_to is None or modpath in restrict_to:
                reported_displays.add(display)
                report.findings.extend(findings)
        program = build_program(summaries)
        self.last_program = program
        for rule in self.program_rules:
            for finding in rule.check(program):
                if (
                    restrict_to is None
                    or finding.path in reported_displays
                    or finding.path.startswith("<")
                ):
                    report.findings.append(finding)
        for rule in self.data_rules:
            report.findings.extend(rule.check())
        for finding in report.findings:
            self.suppressions.apply(finding)
        stale_files = self.suppressions.stale_files()
        for entry in stale_files:
            report.findings.append(_stale_file_finding(entry))
        for stale in self.suppressions.unused():
            if stale in stale_files:
                continue
            report.findings.append(_stale_suppression_finding(stale))
        cache.save()
        return report


def _stale_suppression_finding(entry: Suppression) -> Finding:
    return Finding(
        rule=ENGINE_RULE,
        severity=Severity.WARNING,
        message=(
            f"suppression matched no finding ({entry.describe()}); "
            "remove it or fix its pattern"
        ),
        path="<suppressions>",
    )


def _stale_file_finding(entry: Suppression) -> Finding:
    return Finding(
        rule=ENGINE_RULE,
        severity=Severity.WARNING,
        message=(
            f"suppression points at a missing file ({entry.describe()}); "
            "run 'repro lint --prune-suppressions' to drop it"
        ),
        path="<suppressions>",
    )
