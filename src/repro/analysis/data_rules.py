"""Data rules: sentiment pattern-database and lexicon invariants.

The paper's stated precision lever is the quality of the pattern
database and the ~3000-entry sentiment lexicon (Section 4.2), so these
rules guard their internal consistency.  Every rule takes its tables as
constructor arguments (defaulting to the shipped data) so tests can
validate behaviour against mutated in-memory copies.

Data findings use pseudo-paths — ``<pattern-db>`` and ``<lexicon>`` —
with the 1-based entry index as the line number, so per-path
suppressions work the same way they do for code findings.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..core.lexicon import _participle
from ..core.patterns import parse_pattern_line
from ..lexicons import adjectives, adverbs, negation, nouns, verbs
from ..lexicons import patterns as pattern_data
from ..nlp import penn
from .engine import DataRule
from .findings import Finding, Severity

PATTERN_DB_PATH = "<pattern-db>"
LEXICON_PATH = "<lexicon>"

#: Coarse POS classes a lexicon entry may carry (a subset of the Penn
#: tagset in :mod:`repro.nlp.penn`).
LEXICON_POS_TAGS = ("JJ", "NN", "VB", "RB")

#: Component roles a pattern target may name (the paper's grammar:
#: sentiment lands on a subject, object, or prepositional phrase).
TARGET_ROLES = ("SP", "OP", "PP")

Entry = tuple[str, str, str]  # (term, POS, polarity symbol)


def default_pattern_lines() -> list[str]:
    return pattern_data.pattern_lines()


def default_lexicon_entries() -> list[Entry]:
    """Raw entries of the four curated lists (no derived participles)."""
    out: list[Entry] = []
    out.extend(adjectives.entries())
    out.extend(nouns.entries())
    out.extend(verbs.entries())
    out.extend(adverbs.entries())
    return out


def known_pattern_predicates() -> frozenset[str]:
    """Verb lemmas the lexicon layer knows: sentiment + trans verbs."""
    return frozenset(verbs.POSITIVE_VERBS) | frozenset(verbs.NEGATIVE_VERBS) | frozenset(
        verbs.TRANS_VERBS
    )


class PatternSyntaxRule(DataRule):
    """Every pattern line parses under the paper's component grammar."""

    rule_id = "DATA001"
    name = "pattern-db-syntax"
    severity = Severity.ERROR
    invariant = (
        "pattern components are limited to +/-/SP/OP/CP/PP(prep;...), '~' "
        "only inverts transfer categories, and targets are SP/OP/PP"
    )

    def __init__(self, lines: Sequence[str] | None = None):
        self._lines = lines

    def check(self) -> Iterator[Finding]:
        lines = self._lines if self._lines is not None else default_pattern_lines()
        for index, line in enumerate(lines, start=1):
            parts = line.split()
            if len(parts) == 3 and parts[1].startswith("~") and parts[1][1:] in ("+", "-"):
                yield self.finding(
                    f"pattern {line!r}: '~' only applies to transfer "
                    "categories (SP/OP/CP/PP), not fixed polarities",
                    path=PATTERN_DB_PATH,
                    line=index,
                )
                continue
            try:
                pattern = parse_pattern_line(line)
            except ValueError as exc:
                yield self.finding(
                    f"malformed pattern {line!r}: {exc}",
                    path=PATTERN_DB_PATH,
                    line=index,
                )
                continue
            if pattern.target.role not in TARGET_ROLES:
                yield self.finding(
                    f"pattern {line!r}: target component must be one of "
                    f"{'/'.join(TARGET_ROLES)}, got {pattern.target.role!r}",
                    path=PATTERN_DB_PATH,
                    line=index,
                )


class PatternPredicateRule(DataRule):
    """Every pattern predicate is a lemma the verb lexicon knows."""

    rule_id = "DATA002"
    name = "pattern-predicate-lexicon"
    severity = Severity.ERROR
    invariant = (
        "every pattern-DB predicate lemma appears in the verb lexicon "
        "(sentiment verbs or enumerated trans verbs), so no rule is dead"
    )

    def __init__(
        self,
        lines: Sequence[str] | None = None,
        known: Iterable[str] | None = None,
    ):
        self._lines = lines
        self._known = frozenset(known) if known is not None else None

    def check(self) -> Iterator[Finding]:
        lines = self._lines if self._lines is not None else default_pattern_lines()
        known = self._known if self._known is not None else known_pattern_predicates()
        for index, line in enumerate(lines, start=1):
            predicate = line.split()[0] if line.split() else ""
            if predicate and predicate not in known:
                yield self.finding(
                    f"pattern predicate {predicate!r} is not in the verb "
                    "lexicon (POSITIVE_VERBS / NEGATIVE_VERBS / TRANS_VERBS); "
                    "the rule can never fire",
                    path=PATTERN_DB_PATH,
                    line=index,
                )


class PatternDuplicateRule(DataRule):
    """No duplicate predicate+category+target entries."""

    rule_id = "DATA003"
    name = "pattern-db-duplicates"
    severity = Severity.ERROR
    invariant = (
        "each (predicate, sent_category, target) triple appears once — "
        "duplicates make rule priority order meaningless"
    )

    def __init__(self, lines: Sequence[str] | None = None):
        self._lines = lines

    def check(self) -> Iterator[Finding]:
        lines = self._lines if self._lines is not None else default_pattern_lines()
        seen: dict[tuple[str, ...], int] = {}
        for index, line in enumerate(lines, start=1):
            key = tuple(line.split())
            first = seen.setdefault(key, index)
            if first != index:
                yield self.finding(
                    f"duplicate pattern {line!r} (first at entry {first})",
                    path=PATTERN_DB_PATH,
                    line=index,
                )


class LexiconConflictRule(DataRule):
    """No term carries both polarities within one coarse POS."""

    rule_id = "DATA004"
    name = "lexicon-polarity-conflict"
    severity = Severity.ERROR
    invariant = (
        "no (term, POS) is listed with conflicting polarity across the "
        "adjective/noun/verb/adverb sets or the derived participles"
    )

    def __init__(self, entries: Sequence[Entry] | None = None):
        self._entries = entries

    def check(self) -> Iterator[Finding]:
        entries = list(self._entries) if self._entries is not None else (
            default_lexicon_entries() + _derived_participle_entries()
        )
        seen: dict[tuple[str, str], tuple[int, str]] = {}
        for index, (term, pos, symbol) in enumerate(entries, start=1):
            key = (term.lower(), pos)
            first = seen.setdefault(key, (index, symbol))
            if first[1] != symbol:
                yield self.finding(
                    f"conflicting polarity for {term!r} ({pos}): "
                    f"{first[1]!r} at entry {first[0]} vs {symbol!r}",
                    path=LEXICON_PATH,
                    line=index,
                )


def _derived_participle_entries() -> list[Entry]:
    """The participial JJ entries ``default_lexicon`` derives from verbs."""
    out: list[Entry] = []
    for verb_list, symbol in ((verbs.POSITIVE_VERBS, "+"), (verbs.NEGATIVE_VERBS, "-")):
        for verb in verb_list:
            for suffix in ("ed", "ing"):
                out.append((_participle(verb, suffix), "JJ", symbol))
    return out


class NegationOverlapRule(DataRule):
    """Negation vocabulary is disjoint from the polarity vocabulary."""

    rule_id = "DATA005"
    name = "lexicon-negation-overlap"
    severity = Severity.ERROR
    invariant = (
        "negators reverse polarity and polarity terms carry it; a word in "
        "both lists is analyzed inconsistently and must be an explicit, "
        "justified exception"
    )

    def __init__(
        self,
        entries: Sequence[Entry] | None = None,
        negators: Iterable[str] | None = None,
        negation_verbs: Iterable[str] | None = None,
    ):
        self._entries = entries
        self._negators = frozenset(negators) if negators is not None else None
        self._negation_verbs = (
            frozenset(negation_verbs) if negation_verbs is not None else None
        )

    def check(self) -> Iterator[Finding]:
        entries = list(self._entries) if self._entries is not None else default_lexicon_entries()
        negators = self._negators if self._negators is not None else negation.ALL_NEGATORS
        negation_verbs = (
            self._negation_verbs
            if self._negation_verbs is not None
            else negation.NEGATION_VERBS
        )
        polarity_terms = {term.lower() for term, _pos, _symbol in entries}
        verb_terms = {term.lower() for term, pos, _symbol in entries if pos == "VB"}
        for word in sorted(frozenset(negators) & polarity_terms):
            yield self.finding(
                f"negator {word!r} is also a polarity lexicon term",
                path=LEXICON_PATH,
            )
        for word in sorted(frozenset(negation_verbs) & verb_terms):
            yield self.finding(
                f"negation verb {word!r} is also a sentiment verb",
                path=LEXICON_PATH,
            )


class LexiconPosRule(DataRule):
    """Lexicon POS tags stay inside the Penn tagset's coarse classes."""

    rule_id = "DATA006"
    name = "lexicon-pos-tags"
    severity = Severity.ERROR
    invariant = (
        "every lexicon entry's POS is one of the coarse classes "
        "JJ/NN/VB/RB, all members of the Penn tagset in repro.nlp.penn"
    )

    def __init__(self, entries: Sequence[Entry] | None = None):
        self._entries = entries

    def check(self) -> Iterator[Finding]:
        entries = list(self._entries) if self._entries is not None else default_lexicon_entries()
        for index, (term, pos, symbol) in enumerate(entries, start=1):
            if pos not in LEXICON_POS_TAGS:
                yield self.finding(
                    f"entry {term!r} has POS {pos!r}; lexicon entries must "
                    f"use one of {'/'.join(LEXICON_POS_TAGS)}",
                    path=LEXICON_PATH,
                    line=index,
                )
            elif not penn.is_valid_tag(pos):  # pragma: no cover — subset guard
                yield self.finding(
                    f"entry {term!r} has POS {pos!r} outside the Penn tagset",
                    path=LEXICON_PATH,
                    line=index,
                )
            if symbol not in ("+", "-"):
                yield self.finding(
                    f"entry {term!r} has sent_category {symbol!r}; must be + or -",
                    path=LEXICON_PATH,
                    line=index,
                )


def default_data_rules() -> list[DataRule]:
    """The full data-rule set, in report order."""
    return [
        PatternSyntaxRule(),
        PatternPredicateRule(),
        PatternDuplicateRule(),
        LexiconConflictRule(),
        NegationOverlapRule(),
        LexiconPosRule(),
    ]


__all__ = [
    "LEXICON_PATH",
    "LEXICON_POS_TAGS",
    "LexiconConflictRule",
    "LexiconPosRule",
    "NegationOverlapRule",
    "PATTERN_DB_PATH",
    "PatternDuplicateRule",
    "PatternPredicateRule",
    "PatternSyntaxRule",
    "TARGET_ROLES",
    "default_data_rules",
    "default_lexicon_entries",
    "default_pattern_lines",
    "known_pattern_predicates",
]
