"""Function-level CFGs and a small forward-dataflow framework.

The whole-program rules (:mod:`repro.analysis.program_rules`) need more
than per-file AST pattern matching: RES001 must prove a ``pin`` reaches
a ``release`` on *every* path out of a function, including the paths an
exception takes.  This module supplies the two pieces they share:

* :func:`build_cfg` — a statement-level control-flow graph for one
  function.  Every simple statement becomes one node carrying *events*
  (calls, name assignments, returns); compound statements contribute
  structure.  Each node that can raise carries an **exceptional
  successor** pointing at the innermost handler/finally (or the
  function exit), so "what happens when this line throws" is an
  ordinary graph question.
* :func:`forward_fixpoint` — a generic worklist solver over those
  graphs.  A rule provides a transfer function from an in-fact set to
  ``(out_normal, out_exceptional)`` fact sets; the solver iterates to a
  fixpoint and returns the in-facts per node.

Everything here is built once per function at summary time and is
JSON-serializable (:meth:`FunctionCfg.to_dict`), so the incremental
lint cache can persist it and warm runs never re-parse unchanged files.

Approximations, chosen to err toward *more* paths (more findings, never
silently fewer): a ``finally`` body's exit flows both to the statement
after the ``try`` and to the enclosing exception target, standing in
for the re-raise continuation; ``return`` routes through the innermost
``finally`` when one is active.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable

ENTRY = 0
EXIT = 1

#: Event kinds carried on CFG nodes.
EV_CALL = "call"  # ("call", call_index) — index into FunctionSummary.calls
EV_ASSIGN = "assign"  # ("assign", target_name, source_token)
EV_RETURN = "return"  # ("return",)

Event = tuple


@dataclass
class CfgNode:
    """One statement: its events, normal and exceptional successors."""

    lineno: int = 0
    events: list[Event] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    #: Where control lands if this statement raises (-1: cannot raise).
    esucc: int = -1

    def add_succ(self, idx: int) -> None:
        if idx not in self.succs:
            self.succs.append(idx)

    def to_dict(self) -> dict:
        return {
            "lineno": self.lineno,
            "events": [list(e) for e in self.events],
            "succs": list(self.succs),
            "esucc": self.esucc,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CfgNode":
        return cls(
            lineno=payload["lineno"],
            events=[tuple(e) for e in payload["events"]],
            succs=list(payload["succs"]),
            esucc=payload["esucc"],
        )


@dataclass
class FunctionCfg:
    """Statement-level CFG; node 0 is ENTRY, node 1 is EXIT."""

    nodes: list[CfgNode] = field(default_factory=list)

    def successors(self, idx: int) -> Iterable[int]:
        node = self.nodes[idx]
        yield from node.succs
        if node.esucc >= 0:
            yield node.esucc

    def to_dict(self) -> dict:
        return {"nodes": [n.to_dict() for n in self.nodes]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionCfg":
        return cls(nodes=[CfgNode.from_dict(n) for n in payload["nodes"]])


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


def _may_raise(stmt: ast.stmt) -> bool:
    """Conservative: statements containing calls or subscripts can raise."""
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Subscript, ast.Raise, ast.Assert)):
            return True
    return False


class _CfgBuilder:
    """Builds a :class:`FunctionCfg` with one node per simple statement.

    ``register_events`` is called with each simple statement and the new
    node, letting the caller (the summary visitor) attach call/assign
    events that reference its own call table.
    """

    def __init__(self, register_events: Callable[[ast.stmt, CfgNode], None]):
        self.cfg = FunctionCfg(nodes=[CfgNode(), CfgNode()])  # ENTRY, EXIT
        self._register = register_events
        # Innermost enclosing (loop_continue, loop_break) targets.
        self._loops: list[tuple[int, int]] = []
        # Innermost exception target (handler head / finally head / EXIT).
        self._etargets: list[int] = [EXIT]
        # Innermost active finally head, for return routing.
        self._finallies: list[int] = []

    # -- plumbing ----------------------------------------------------------------

    def _new_node(self, lineno: int = 0) -> int:
        self.cfg.nodes.append(CfgNode(lineno=lineno))
        return len(self.cfg.nodes) - 1

    def _link(self, sources: Iterable[int], target: int) -> None:
        for idx in sources:
            self.cfg.nodes[idx].add_succ(target)

    # -- statement dispatch ------------------------------------------------------

    def build(self, body: list[ast.stmt]) -> FunctionCfg:
        tails = self._sequence(body, [ENTRY])
        self._link(tails, EXIT)
        return self.cfg

    def _sequence(self, body: list[ast.stmt], frontier: list[int]) -> list[int]:
        frontier = [t for t in frontier if t >= 0]
        for stmt in body:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = [t for t in self._statement(stmt, frontier) if t >= 0]
        return frontier

    def _statement(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions get their own CFGs; the def itself is a
            # no-op binding here.
            node = self._simple(stmt, frontier, attach_events=False)
            return [node]
        return [self._simple_terminal(stmt, frontier)]

    def _simple(
        self, stmt: ast.stmt, frontier: list[int], attach_events: bool = True
    ) -> int:
        idx = self._new_node(getattr(stmt, "lineno", 0))
        self._link(frontier, idx)
        node = self.cfg.nodes[idx]
        if attach_events:
            self._register(stmt, node)
        if _may_raise(stmt):
            node.esucc = self._etargets[-1]
        return idx

    def _simple_terminal(self, stmt: ast.stmt, frontier: list[int]) -> int:
        idx = self._simple(stmt, frontier)
        node = self.cfg.nodes[idx]
        if isinstance(stmt, ast.Return):
            node.events.append((EV_RETURN,))
            # A return runs active finally blocks before leaving.
            node.add_succ(self._finallies[-1] if self._finallies else EXIT)
            return -_mark_terminal()
        if isinstance(stmt, ast.Raise):
            node.esucc = self._etargets[-1]
            node.add_succ(self._etargets[-1])
            return -_mark_terminal()
        if isinstance(stmt, ast.Break):
            if self._loops:
                node.add_succ(self._loops[-1][1])
            return -_mark_terminal()
        if isinstance(stmt, ast.Continue):
            if self._loops:
                node.add_succ(self._loops[-1][0])
            return -_mark_terminal()
        return idx

    # -- compound statements -----------------------------------------------------

    def _if(self, stmt: ast.If, frontier: list[int]) -> list[int]:
        test = self._simple(stmt, frontier)
        then_tails = self._sequence(stmt.body, [test])
        else_tails = self._sequence(stmt.orelse, [test]) if stmt.orelse else [test]
        return [t for t in then_tails + else_tails if t >= 0]

    def _loop(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        head = self._simple(stmt, frontier)
        after = self._new_node(getattr(stmt, "lineno", 0))
        self._loops.append((head, after))
        body_tails = self._sequence(stmt.body, [head])
        self._link([t for t in body_tails if t >= 0], head)
        self._loops.pop()
        # Loop can be skipped (For over empty, While false) or exited.
        self.cfg.nodes[head].add_succ(after)
        orelse_tails = (
            self._sequence(stmt.orelse, [after]) if getattr(stmt, "orelse", None)
            else [after]
        )
        return [t for t in orelse_tails if t >= 0]

    def _with(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        head = self._simple(stmt, frontier)
        tails = self._sequence(stmt.body, [head])
        return [t for t in tails if t >= 0]

    def _try(self, stmt: ast.Try, frontier: list[int]) -> list[int]:
        after_tails: list[int] = []
        finally_head: int | None = None
        finally_tail_nodes: list[int] = []
        if stmt.finalbody:
            finally_head = self._new_node(stmt.finalbody[0].lineno)

        # Handlers are built first so body statements know their target.
        handler_heads: list[int] = []
        handler_tails: list[int] = []
        outer_target = finally_head if finally_head is not None else self._etargets[-1]
        for handler in stmt.handlers:
            head = self._new_node(handler.lineno)
            handler_heads.append(head)
            self._etargets.append(outer_target)
            tails = self._sequence(handler.body, [head])
            self._etargets.pop()
            handler_tails.extend(t for t in tails if t >= 0)

        body_target = handler_heads[0] if handler_heads else outer_target
        self._etargets.append(body_target)
        if finally_head is not None:
            self._finallies.append(finally_head)
        body_tails = self._sequence(stmt.body, frontier)
        if finally_head is not None:
            self._finallies.pop()
        self._etargets.pop()
        # An exception may match any handler, not just the first.
        for first, rest in zip(handler_heads, handler_heads[1:]):
            self.cfg.nodes[first].add_succ(rest)
        if handler_heads and finally_head is not None:
            self.cfg.nodes[handler_heads[-1]].add_succ(finally_head)

        else_tails = (
            self._sequence(stmt.orelse, [t for t in body_tails if t >= 0])
            if stmt.orelse
            else [t for t in body_tails if t >= 0]
        )
        normal_tails = else_tails + handler_tails

        if finally_head is not None:
            self._link(normal_tails, finally_head)
            self._etargets.append(self._etargets[-1])
            fin_tails = self._sequence(stmt.finalbody, [finally_head])
            self._etargets.pop()
            finally_tail_nodes = [t for t in fin_tails if t >= 0]
            # The finally exit continues normally AND stands in for the
            # re-raise/return continuation (approximation, see module doc).
            for tail in finally_tail_nodes:
                self.cfg.nodes[tail].add_succ(self._etargets[-1])
            after_tails = finally_tail_nodes
        else:
            after_tails = normal_tails
        return after_tails


_TERMINAL_COUNTER = [2]


def _mark_terminal() -> int:
    """A unique negative sentinel: statement never falls through."""
    _TERMINAL_COUNTER[0] += 1
    return _TERMINAL_COUNTER[0]


def build_cfg(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    register_events: Callable[[ast.stmt, CfgNode], None],
) -> FunctionCfg:
    """CFG for one function body; events attached via *register_events*."""
    return _CfgBuilder(register_events).build(fn.body)


# ---------------------------------------------------------------------------
# worklist solver
# ---------------------------------------------------------------------------

Facts = frozenset

#: transfer(node, in_facts) -> (out_facts_normal, out_facts_exceptional)
Transfer = Callable[[CfgNode, Facts], tuple[Facts, Facts]]


def forward_fixpoint(
    cfg: FunctionCfg,
    transfer: Transfer,
    init: Facts = frozenset(),
) -> list[Facts]:
    """Forward may-analysis: facts are joined by union at merge points.

    Returns the in-fact set of every node at the fixpoint.  The
    exceptional out-set flows only along the node's exceptional
    successor, so a transfer can model "this statement did not complete"
    precisely (e.g. an acquire that raised never acquired).
    """
    n = len(cfg.nodes)
    in_facts: list[Facts] = [frozenset()] * n
    in_facts[ENTRY] = init
    work = list(range(n))
    while work:
        idx = work.pop()
        node = cfg.nodes[idx]
        out_normal, out_exc = transfer(node, in_facts[idx])
        for succ in node.succs:
            merged = in_facts[succ] | out_normal
            if merged != in_facts[succ]:
                in_facts[succ] = merged
                if succ not in work:
                    work.append(succ)
        if node.esucc >= 0:
            merged = in_facts[node.esucc] | out_exc
            if merged != in_facts[node.esucc]:
                in_facts[node.esucc] = merged
                if node.esucc not in work:
                    work.append(node.esucc)
    return in_facts
