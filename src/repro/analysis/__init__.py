"""Static analysis for the sentiment-mining repro (``repro lint``).

A dependency-free rule engine (stdlib ``ast`` only) enforcing the
invariants the rest of the codebase relies on:

* determinism — no wall-clock reads, all RNGs seeded (DET001/DET002);
* import layering — ``lexicons/nlp/obs → core → miners → platform →
  eval → apps → cli`` stays a DAG (ARCH001);
* observability discipline — spans via context managers, metric names
  matching the registry regex, trace context threaded through every
  platform bus request (OBS001/OBS002, interprocedural OBS003i);
* Vinci handler contract — handlers take and return dict envelopes
  (PLAT001);
* serving discipline — serving handlers accept and consult deadlines,
  serving queues are bounded (PLAT002);
* pattern-DB and lexicon consistency (DATA001–DATA006);
* whole-program invariants over the call graph — pin/release pairing
  (RES001), deadline propagation on handler→bus chains (SRV001), RNG
  stream isolation (DET002i), dead public symbols (DEAD001); see
  :mod:`repro.analysis.program` and :mod:`repro.analysis.program_rules`.

Intended exceptions live in ``lint-suppressions.json`` with a mandatory
one-line justification each; see :mod:`repro.analysis.suppressions`.
"""

from __future__ import annotations

from pathlib import Path

from .cache import CACHE_FILENAME, CACHE_SCHEMA_VERSION, LintCache
from .code_rules import (
    EnvelopeSchemaRule,
    LayeringRule,
    MetricNameRule,
    SeededRngRule,
    ServingDisciplineRule,
    SpanContextRule,
    TraceContextRule,
    VinciHandlerRule,
    WallClockRule,
    default_code_rules,
)
from .data_rules import (
    LexiconConflictRule,
    LexiconPosRule,
    NegationOverlapRule,
    PatternDuplicateRule,
    PatternPredicateRule,
    PatternSyntaxRule,
    default_data_rules,
)
from .engine import (
    ENGINE_RULE,
    CodeRule,
    DataRule,
    Linter,
    LintReport,
    ProgramRule,
    Rule,
)
from .findings import Finding, Severity
from .program import Program, build_program, summarize_module
from .program_rules import (
    DeadSymbolRule,
    DeadlinePropagationRule,
    ResourcePairRule,
    RngFlowRule,
    TraceThreadingRule,
    WalOrderingRule,
    default_program_rules,
)
from .suppressions import Suppression, SuppressionConfig

#: Conventional name of the suppression config at the repository root.
SUPPRESSIONS_FILENAME = "lint-suppressions.json"


def find_suppression_config(start: str | Path | None = None) -> Path | None:
    """Locate ``lint-suppressions.json`` by walking up from *start*.

    *start* defaults to the current working directory.  Returns ``None``
    when no config exists on the path to the filesystem root.
    """
    here = Path(start) if start is not None else Path.cwd()
    for candidate_dir in (here, *here.parents):
        candidate = candidate_dir / SUPPRESSIONS_FILENAME
        if candidate.is_file():
            return candidate
    return None


def build_linter(
    config_path: str | Path | None = None,
    *,
    cache_path: str | Path | None = None,
    use_cache: bool = True,
) -> Linter:
    """A :class:`Linter` with the full default rule set.

    *config_path* points at a suppression config; when ``None`` the
    conventional file is searched for from the current directory upward.
    The directory holding the config doubles as the project root: the
    incremental cache lives there (``.lint-cache.json``) and its
    ``tests``/``benchmarks`` directories become DEAD001's reference
    roots.  ``use_cache=False`` disables reading and writing the cache.
    """
    if config_path is None:
        found = find_suppression_config()
    else:
        found = Path(config_path)
    suppressions = (
        SuppressionConfig.load(str(found)) if found else SuppressionConfig()
    )
    root = found.parent if found is not None else Path.cwd()
    reference_roots = tuple(
        str(root / name)
        for name in ("tests", "benchmarks", "examples")
        if (root / name).is_dir()
    )
    if use_cache and cache_path is None:
        cache_path = root / CACHE_FILENAME
    return Linter(
        code_rules=default_code_rules(),
        data_rules=default_data_rules(),
        program_rules=default_program_rules(reference_roots=reference_roots),
        suppressions=suppressions,
        cache_path=cache_path if use_cache else None,
    )


def all_rules() -> list[Rule]:
    """Every default rule, code rules first — for docs and tests."""
    return [
        *default_code_rules(),
        *default_program_rules(),
        *default_data_rules(),
    ]


__all__ = [
    "CACHE_FILENAME",
    "CACHE_SCHEMA_VERSION",
    "CodeRule",
    "DataRule",
    "DeadSymbolRule",
    "DeadlinePropagationRule",
    "ENGINE_RULE",
    "EnvelopeSchemaRule",
    "Finding",
    "LayeringRule",
    "LexiconConflictRule",
    "LexiconPosRule",
    "LintCache",
    "LintReport",
    "Linter",
    "MetricNameRule",
    "NegationOverlapRule",
    "PatternDuplicateRule",
    "PatternPredicateRule",
    "PatternSyntaxRule",
    "Program",
    "ProgramRule",
    "ResourcePairRule",
    "RngFlowRule",
    "Rule",
    "SUPPRESSIONS_FILENAME",
    "SeededRngRule",
    "ServingDisciplineRule",
    "Severity",
    "SpanContextRule",
    "Suppression",
    "SuppressionConfig",
    "TraceContextRule",
    "TraceThreadingRule",
    "VinciHandlerRule",
    "WalOrderingRule",
    "WallClockRule",
    "all_rules",
    "build_linter",
    "build_program",
    "default_code_rules",
    "default_data_rules",
    "default_program_rules",
    "find_suppression_config",
    "summarize_module",
]
