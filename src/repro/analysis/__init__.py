"""Static analysis for the sentiment-mining repro (``repro lint``).

A dependency-free rule engine (stdlib ``ast`` only) enforcing the
invariants the rest of the codebase relies on:

* determinism — no wall-clock reads, all RNGs seeded (DET001/DET002);
* import layering — ``lexicons/nlp/obs → core → miners → platform →
  eval → apps → cli`` stays a DAG (ARCH001);
* observability discipline — spans via context managers, metric names
  matching the registry regex, trace context threaded through every
  platform bus request (OBS001/OBS002/OBS003);
* Vinci handler contract — handlers take and return dict envelopes
  (PLAT001);
* serving discipline — serving handlers accept and consult deadlines,
  serving queues are bounded (PLAT002);
* pattern-DB and lexicon consistency (DATA001–DATA006).

Intended exceptions live in ``lint-suppressions.json`` with a mandatory
one-line justification each; see :mod:`repro.analysis.suppressions`.
"""

from __future__ import annotations

from pathlib import Path

from .code_rules import (
    EnvelopeSchemaRule,
    LayeringRule,
    MetricNameRule,
    SeededRngRule,
    ServingDisciplineRule,
    SpanContextRule,
    TraceContextRule,
    VinciHandlerRule,
    WallClockRule,
    default_code_rules,
)
from .data_rules import (
    LexiconConflictRule,
    LexiconPosRule,
    NegationOverlapRule,
    PatternDuplicateRule,
    PatternPredicateRule,
    PatternSyntaxRule,
    default_data_rules,
)
from .engine import ENGINE_RULE, CodeRule, DataRule, Linter, LintReport, Rule
from .findings import Finding, Severity
from .suppressions import Suppression, SuppressionConfig

#: Conventional name of the suppression config at the repository root.
SUPPRESSIONS_FILENAME = "lint-suppressions.json"


def find_suppression_config(start: str | Path | None = None) -> Path | None:
    """Locate ``lint-suppressions.json`` by walking up from *start*.

    *start* defaults to the current working directory.  Returns ``None``
    when no config exists on the path to the filesystem root.
    """
    here = Path(start) if start is not None else Path.cwd()
    for candidate_dir in (here, *here.parents):
        candidate = candidate_dir / SUPPRESSIONS_FILENAME
        if candidate.is_file():
            return candidate
    return None


def build_linter(config_path: str | Path | None = None) -> Linter:
    """A :class:`Linter` with the full default rule set.

    *config_path* points at a suppression config; when ``None`` the
    conventional file is searched for from the current directory upward.
    """
    if config_path is None:
        found = find_suppression_config()
        suppressions = SuppressionConfig.load(str(found)) if found else SuppressionConfig()
    else:
        suppressions = SuppressionConfig.load(str(config_path))
    return Linter(
        code_rules=default_code_rules(),
        data_rules=default_data_rules(),
        suppressions=suppressions,
    )


def all_rules() -> list[Rule]:
    """Every default rule, code rules first — for docs and tests."""
    return [*default_code_rules(), *default_data_rules()]


__all__ = [
    "CodeRule",
    "DataRule",
    "ENGINE_RULE",
    "EnvelopeSchemaRule",
    "Finding",
    "LayeringRule",
    "LexiconConflictRule",
    "LexiconPosRule",
    "LintReport",
    "Linter",
    "MetricNameRule",
    "NegationOverlapRule",
    "PatternDuplicateRule",
    "PatternPredicateRule",
    "PatternSyntaxRule",
    "Rule",
    "SUPPRESSIONS_FILENAME",
    "SeededRngRule",
    "ServingDisciplineRule",
    "Severity",
    "SpanContextRule",
    "Suppression",
    "SuppressionConfig",
    "TraceContextRule",
    "VinciHandlerRule",
    "WallClockRule",
    "all_rules",
    "build_linter",
    "default_code_rules",
    "default_data_rules",
    "find_suppression_config",
]
