"""Per-path suppression config for ``repro lint``.

Findings that reflect *intended* exceptions (e.g. "fail" is both a
negative sentiment verb and a complement negator — the paper wants both
readings) are recorded in a JSON file instead of weakening the rules.
Every entry must carry a one-line ``reason``; entries that match nothing
are themselves reported, so the config cannot rot silently.

File shape (``lint-suppressions.json`` at the repo root)::

    {
      "suppressions": [
        {
          "rule": "DATA005",
          "path": "<lexicon>",
          "match": "fail",
          "reason": "negation verb that is also a sentiment verb, per the paper"
        }
      ]
    }

``rule`` is a rule id or ``*``; ``path`` is an ``fnmatch`` glob over the
finding's path (default ``*``); ``match`` is an optional substring of
the finding's message.  A finding is suppressed by the first entry that
matches all three.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass
from pathlib import Path

from .findings import Finding

_ALLOWED_KEYS = {"rule", "path", "match", "reason"}

#: Characters that make a suppression path a glob rather than a file.
_GLOB_CHARS = "*?["


@dataclass(frozen=True)
class Suppression:
    """One suppression entry; ``reason`` is mandatory and human-readable."""

    rule: str
    reason: str
    path: str = "*"
    match: str = ""

    def covers(self, finding: Finding) -> bool:
        if self.rule not in ("*", finding.rule):
            return False
        if not fnmatch.fnmatch(finding.path, self.path):
            return False
        if self.match and self.match not in finding.message:
            return False
        return True

    def describe(self) -> str:
        parts = [f"rule={self.rule}", f"path={self.path}"]
        if self.match:
            parts.append(f"match={self.match!r}")
        return " ".join(parts)

    def names_file(self) -> bool:
        """True when ``path`` is a concrete file path, not a glob or a
        pseudo-path like ``<lexicon>``."""
        return not (
            self.path == "*"
            or self.path.startswith("<")
            or any(ch in self.path for ch in _GLOB_CHARS)
        )

    def to_payload(self) -> dict:
        payload: dict = {"rule": self.rule}
        if self.path != "*":
            payload["path"] = self.path
        if self.match:
            payload["match"] = self.match
        payload["reason"] = self.reason
        return payload


class SuppressionConfig:
    """An ordered list of suppressions with per-entry hit counting."""

    def __init__(
        self,
        entries: list[Suppression] | tuple[Suppression, ...] = (),
        source: str | None = None,
    ):
        self.entries = list(entries)
        self._hits = [0] * len(self.entries)
        #: Path the config was loaded from (None for in-memory configs);
        #: concrete suppression paths resolve relative to its directory.
        self.source = source

    @classmethod
    def from_dict(cls, payload: dict) -> "SuppressionConfig":
        if not isinstance(payload, dict):
            raise ValueError("suppression config must be a JSON object")
        raw = payload.get("suppressions", [])
        if not isinstance(raw, list):
            raise ValueError("'suppressions' must be a list")
        entries = []
        for i, item in enumerate(raw):
            if not isinstance(item, dict):
                raise ValueError(f"suppression #{i + 1} must be an object")
            unknown = set(item) - _ALLOWED_KEYS
            if unknown:
                raise ValueError(
                    f"suppression #{i + 1} has unknown keys {sorted(unknown)}"
                )
            rule = str(item.get("rule", "")).strip()
            reason = str(item.get("reason", "")).strip()
            if not rule:
                raise ValueError(f"suppression #{i + 1} is missing 'rule'")
            if not reason:
                raise ValueError(
                    f"suppression #{i + 1} ({rule}) is missing its justification 'reason'"
                )
            entries.append(
                Suppression(
                    rule=rule,
                    reason=reason,
                    path=str(item.get("path", "*")),
                    match=str(item.get("match", "")),
                )
            )
        return cls(entries)

    @classmethod
    def load(cls, path: str) -> "SuppressionConfig":
        with open(path, "r", encoding="utf-8") as stream:
            try:
                payload = json.load(stream)
            except json.JSONDecodeError as exc:
                raise ValueError(f"malformed suppression config {path}: {exc}") from exc
        config = cls.from_dict(payload)
        config.source = path
        return config

    def apply(self, finding: Finding) -> Finding:
        """Mark *finding* suppressed if an entry covers it (first wins)."""
        for i, entry in enumerate(self.entries):
            if entry.covers(finding):
                self._hits[i] += 1
                finding.suppressed = True
                finding.suppression_reason = entry.reason
                break
        return finding

    def unused(self) -> list[Suppression]:
        """Entries that matched no finding in the last run."""
        return [entry for entry, hits in zip(self.entries, self._hits) if hits == 0]

    def stale_files(self) -> list[Suppression]:
        """Entries whose concrete ``path`` no longer exists on disk.

        Paths resolve relative to the config file's directory (falling
        back to the current directory for in-memory configs), so the
        check matches how the repo-root config addresses sources.
        """
        base = Path(self.source).parent if self.source else Path(".")
        stale = []
        for entry in self.entries:
            if not entry.names_file():
                continue
            if not (base / entry.path).exists() and not Path(entry.path).exists():
                stale.append(entry)
        return stale

    def pruned(self) -> "SuppressionConfig":
        """A copy without entries that matched nothing in the last run
        and without entries naming files that no longer exist.

        Entry order is preserved, so the rewrite is deterministic.
        """
        stale = set(self.stale_files())
        kept = [
            entry
            for entry, hits in zip(self.entries, self._hits)
            if hits > 0 and entry not in stale
        ]
        return SuppressionConfig(kept, source=self.source)

    def to_payload(self) -> dict:
        return {"suppressions": [entry.to_payload() for entry in self.entries]}

    def save(self, path: str | None = None) -> None:
        """Rewrite the config file deterministically (stable key order)."""
        target = path or self.source
        if target is None:
            raise ValueError("suppression config has no source path to save to")
        with open(target, "w", encoding="utf-8") as stream:
            json.dump(self.to_payload(), stream, indent=2)
            stream.write("\n")

    def __len__(self) -> int:
        return len(self.entries)
