"""Per-path suppression config for ``repro lint``.

Findings that reflect *intended* exceptions (e.g. "fail" is both a
negative sentiment verb and a complement negator — the paper wants both
readings) are recorded in a JSON file instead of weakening the rules.
Every entry must carry a one-line ``reason``; entries that match nothing
are themselves reported, so the config cannot rot silently.

File shape (``lint-suppressions.json`` at the repo root)::

    {
      "suppressions": [
        {
          "rule": "DATA005",
          "path": "<lexicon>",
          "match": "fail",
          "reason": "negation verb that is also a sentiment verb, per the paper"
        }
      ]
    }

``rule`` is a rule id or ``*``; ``path`` is an ``fnmatch`` glob over the
finding's path (default ``*``); ``match`` is an optional substring of
the finding's message.  A finding is suppressed by the first entry that
matches all three.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass

from .findings import Finding

_ALLOWED_KEYS = {"rule", "path", "match", "reason"}


@dataclass(frozen=True)
class Suppression:
    """One suppression entry; ``reason`` is mandatory and human-readable."""

    rule: str
    reason: str
    path: str = "*"
    match: str = ""

    def covers(self, finding: Finding) -> bool:
        if self.rule not in ("*", finding.rule):
            return False
        if not fnmatch.fnmatch(finding.path, self.path):
            return False
        if self.match and self.match not in finding.message:
            return False
        return True

    def describe(self) -> str:
        parts = [f"rule={self.rule}", f"path={self.path}"]
        if self.match:
            parts.append(f"match={self.match!r}")
        return " ".join(parts)


class SuppressionConfig:
    """An ordered list of suppressions with per-entry hit counting."""

    def __init__(self, entries: list[Suppression] | tuple[Suppression, ...] = ()):
        self.entries = list(entries)
        self._hits = [0] * len(self.entries)

    @classmethod
    def from_dict(cls, payload: dict) -> "SuppressionConfig":
        if not isinstance(payload, dict):
            raise ValueError("suppression config must be a JSON object")
        raw = payload.get("suppressions", [])
        if not isinstance(raw, list):
            raise ValueError("'suppressions' must be a list")
        entries = []
        for i, item in enumerate(raw):
            if not isinstance(item, dict):
                raise ValueError(f"suppression #{i + 1} must be an object")
            unknown = set(item) - _ALLOWED_KEYS
            if unknown:
                raise ValueError(
                    f"suppression #{i + 1} has unknown keys {sorted(unknown)}"
                )
            rule = str(item.get("rule", "")).strip()
            reason = str(item.get("reason", "")).strip()
            if not rule:
                raise ValueError(f"suppression #{i + 1} is missing 'rule'")
            if not reason:
                raise ValueError(
                    f"suppression #{i + 1} ({rule}) is missing its justification 'reason'"
                )
            entries.append(
                Suppression(
                    rule=rule,
                    reason=reason,
                    path=str(item.get("path", "*")),
                    match=str(item.get("match", "")),
                )
            )
        return cls(entries)

    @classmethod
    def load(cls, path: str) -> "SuppressionConfig":
        with open(path, "r", encoding="utf-8") as stream:
            try:
                payload = json.load(stream)
            except json.JSONDecodeError as exc:
                raise ValueError(f"malformed suppression config {path}: {exc}") from exc
        return cls.from_dict(payload)

    def apply(self, finding: Finding) -> Finding:
        """Mark *finding* suppressed if an entry covers it (first wins)."""
        for i, entry in enumerate(self.entries):
            if entry.covers(finding):
                self._hits[i] += 1
                finding.suppressed = True
                finding.suppression_reason = entry.reason
                break
        return finding

    def unused(self) -> list[Suppression]:
        """Entries that matched no finding in the last run."""
        return [entry for entry, hits in zip(self.entries, self._hits) if hits == 0]

    def __len__(self) -> int:
        return len(self.entries)
