"""Interprocedural lint rules over the whole-program model.

Per-file rules (:mod:`repro.analysis.code_rules`) cannot see a deadline
dropped two calls deep or a version pin that escapes through a helper.
These rules query the :class:`~repro.analysis.program.Program` — call
graph, summaries, CFGs — built once per lint run:

* **RES001** paired-resource discipline: every ``pin`` reaches a
  matching ``release`` on all paths out of the function, including the
  paths an exception takes (the acquire's own failure excepted — a
  ``pin`` that raised never pinned).
* **SRV001** deadline-propagation completeness: on every call chain
  from an ``answer*`` handler to a platform bus read, each hop threads
  the remaining deadline and the bus payload carries the budget.
  Upgrades PLAT002 from syntactic to call-graph-based.
* **OBS003i** trace-context threading: bus payloads demonstrably carry
  the trace context, where "demonstrably" now crosses function
  boundaries — a payload parameter is trusted only while every resolved
  caller passes a traced value.  Replaces the per-file OBS003.
* **DET002i** RNG stream isolation: an RNG constructed in one
  subsystem (top-level package) must not flow into another subsystem's
  draw sites — mechanical prep for the named-stream RNGManager item on
  the roadmap (paper §6 requires byte-identical reruns, which named
  per-subsystem streams make robust to reordering).
* **PLAT004** WAL ordering: in ingest-path code, every store/index
  mutation must be dominated by a write-ahead-log append on every CFG
  path — append-before-mutate is what makes crash replay exact
  (DESIGN.md §5j).
* **DEAD001** dead public symbols: module-level functions, classes and
  assignments referenced nowhere in the project — src plus the
  *reference roots* (tests/, benchmarks/), which count as users but are
  not themselves analyzed.  Import-bindings are only reported when the
  module re-exports them via ``__all__`` (the compat-shim case).

All rules yield findings sorted by (path, line, message) so report
order is stable run to run.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from .dataflow import EXIT, EV_CALL, CfgNode, forward_fixpoint
from .engine import ProgramRule
from .findings import Finding, Severity
from .program import (
    CallSite,
    FunctionId,
    FunctionSummary,
    ModuleSummary,
    Program,
)


def _sorted(findings: list[Finding]) -> Iterator[Finding]:
    return iter(sorted(findings, key=lambda f: (f.path, f.line, f.message)))


def _map_args(
    site: CallSite, callee: FunctionSummary
) -> list[tuple[str, str]]:
    """(param name, argument token) pairs for a resolved call site.

    Positional arguments map onto the callee's parameter list (which
    already excludes ``self``/``cls``); keywords map by name.  Starred
    arguments make the mapping approximate, which is acceptable — every
    consumer of this mapping errs toward trusting what it cannot see.
    """
    pairs = list(zip(callee.params, site.args))
    for key, token in site.kwargs:
        if key in callee.params:
            pairs.append((key, token))
    return pairs


# ---------------------------------------------------------------------------
# RES001 — paired-resource discipline
# ---------------------------------------------------------------------------


class ResourcePairRule(ProgramRule):
    """Every ``pin`` reaches a ``release`` on all paths (RES001).

    The serving layer's snapshot discipline (DESIGN.md §5h) hinges on
    :meth:`ReplicatedIndex.pin` / ``release``: a leaked pin blocks
    compaction forever, a leak on the exception path only under chaos.
    For each acquire site the rule walks the function CFG — normal and
    exceptional edges — and reports any path that reaches the function
    exit without a matching release.  A release matches when its
    receiver equals the acquire's receiver (``self._index``), when it
    consumes the pinned value, or when the pinned value is handed to a
    function whose transitive closure releases (or that we cannot
    resolve — unresolvable handoffs are trusted).

    Paths on which the acquire itself raised are exempt: a ``pin`` that
    failed never pinned.
    """

    rule_id = "RES001"
    name = "resource-pairing"
    severity = Severity.ERROR
    invariant = (
        "every pin/acquire reaches a matching release on all paths out of "
        "the acquiring function, including exception paths"
    )

    ACQUIRE = "pin"
    RELEASE = "release"

    def check(self, program: Program) -> Iterator[Finding]:
        findings: list[Finding] = []
        direct = {
            fid
            for fid, fn in program.functions()
            if any(c.terminal == self.RELEASE for c in fn.calls)
        }
        releasers = program.transitive_closure(direct, reverse=True)
        for fid, fn in program.functions():
            if not self.applies_to(fid[0]):
                continue
            if not any(c.terminal == self.ACQUIRE for c in fn.calls):
                continue
            summary = program.modules[fid[0]]
            for index in sorted(self._leaked(program, fid, fn, releasers)):
                site = fn.calls[index]
                held = site.target or site.callee
                findings.append(
                    self.finding(
                        f"{site.callee}() result {held!r} can reach the "
                        f"exit of {fn.qname!r} without a matching "
                        f"{self.RELEASE} (check exception paths; release "
                        "in a finally block)",
                        path=summary.path,
                        line=site.lineno,
                    )
                )
        return _sorted(findings)

    def _leaked(
        self,
        program: Program,
        fid: FunctionId,
        fn: FunctionSummary,
        releasers: set[FunctionId],
    ) -> frozenset:
        """Call indices of acquires that may still be held at EXIT.

        A forward may-analysis over the function CFG: a fact is the call
        index of an acquire still held.  The exceptional out-set omits
        the node's own acquires — an acquire that raised never acquired
        — which is exactly the asymmetry
        :func:`~repro.analysis.dataflow.forward_fixpoint` models.
        """

        def transfer(node: CfgNode, facts: frozenset) -> tuple:
            held = set(facts)
            for event in node.events:
                if event[0] != EV_CALL:
                    continue
                site = fn.calls[event[1]]
                for acquired in list(held):
                    if self._releases(
                        program, fid, fn, site, fn.calls[acquired], releasers
                    ):
                        held.discard(acquired)
            out_exc = frozenset(held)
            for event in node.events:
                if event[0] == EV_CALL and fn.calls[event[1]].terminal == self.ACQUIRE:
                    held.add(event[1])
            return frozenset(held), out_exc

        in_facts = forward_fixpoint(fn.cfg, transfer)
        return in_facts[EXIT]

    def _releases(
        self,
        program: Program,
        fid: FunctionId,
        fn: FunctionSummary,
        site: CallSite,
        acquire: CallSite,
        releasers: set[FunctionId],
    ) -> bool:
        if site.terminal == self.RELEASE:
            if acquire.receiver and site.receiver == acquire.receiver:
                return True
            if acquire.target and acquire.target in site.mentions:
                return True
            return False
        if acquire.target and acquire.target in site.args:
            # Pinned value handed to another function: trust it when
            # unresolvable, require a releasing closure otherwise.
            resolved = program.resolve_call_site(fid[0], fn, site)
            return resolved is None or resolved in releasers
        return False


# ---------------------------------------------------------------------------
# SRV001 — deadline-propagation completeness
# ---------------------------------------------------------------------------


class DeadlinePropagationRule(ProgramRule):
    """Handler→bus call chains thread the deadline (SRV001).

    PLAT002 checks each serving handler *accepts* a deadline; this rule
    checks the deadline actually *travels*: starting from every
    ``answer*`` handler, walk the call graph to each platform bus read
    and require (a) the bus payload to carry the remaining budget and
    (b) every intermediate call into a bus-reaching function to pass a
    deadline.  Tail-latency containment under chaos (DESIGN.md §5g) is
    exactly as strong as the weakest hop.
    """

    rule_id = "SRV001"
    name = "deadline-propagation"
    severity = Severity.ERROR
    invariant = (
        "every call chain from an answer* handler to a platform bus read "
        "threads the remaining deadline, and the bus payload carries the "
        "budget"
    )
    scope = ("repro/platform/*",)

    DEADLINE_TOKENS = frozenset({"deadline", "budget", "remaining"})
    PAYLOAD_KEYS = frozenset({"budget", "deadline"})

    @staticmethod
    def _is_bus_read(site: CallSite) -> bool:
        return site.terminal == "request" and "bus" in site.receiver.lower()

    def check(self, program: Program) -> Iterator[Finding]:
        findings: list[Finding] = []
        direct = {
            fid
            for fid, fn in program.functions()
            if any(self._is_bus_read(c) for c in fn.calls)
        }
        bus_reach = program.transitive_closure(direct, reverse=True)
        seeds = [
            fid
            for fid, fn in program.functions()
            if fn.name.lstrip("_").startswith("answer")
            and self.applies_to(fid[0])
        ]
        live = program.transitive_closure(seeds)
        for fid in sorted(live & bus_reach):
            fn = program.function(fid)
            if fn is None or not self.applies_to(fid[0]):
                continue
            summary = program.modules[fid[0]]
            for site in fn.calls:
                if self._is_bus_read(site):
                    if not (
                        set(site.dict_keys) & self.PAYLOAD_KEYS
                        or set(site.mentions) & self.DEADLINE_TOKENS
                    ):
                        findings.append(
                            self.finding(
                                f"bus read in {fn.qname!r} is reachable from "
                                "an answer* handler but its payload carries "
                                "no remaining budget (add a 'budget' key "
                                "from deadline.remaining)",
                                path=summary.path,
                                line=site.lineno,
                            )
                        )
                    continue
                resolved = program.resolve_call_site(fid[0], fn, site)
                if resolved is None or resolved not in bus_reach:
                    continue
                if not (
                    set(site.mentions) & self.DEADLINE_TOKENS
                    or any(
                        key in self.DEADLINE_TOKENS for key, _ in site.kwargs
                    )
                ):
                    callee = program.function(resolved)
                    findings.append(
                        self.finding(
                            f"{fn.qname!r} calls {callee.qname!r} (which "
                            "reaches a bus read) without passing the "
                            "deadline; the remaining budget is lost on "
                            "this hop",
                            path=summary.path,
                            line=site.lineno,
                        )
                    )
        return _sorted(findings)


# ---------------------------------------------------------------------------
# OBS003i — interprocedural trace-context threading
# ---------------------------------------------------------------------------


class TraceThreadingRule(ProgramRule):
    """Bus payloads carry trace context, across function boundaries.

    Replaces the per-file OBS003 heuristic, which had to *assume* any
    payload parameter was traced.  Here a parameter starts trusted and
    loses that trust if any resolved caller passes a value that is not
    demonstrably traced (greatest-fixpoint over the call graph);
    unresolvable callers keep the trust, so precision only ever adds
    findings the per-file rule provably missed.

    The companion check — envelope handlers that open tracer spans must
    consult the incoming context — also goes interprocedural: a helper
    that calls ``extract_context`` two frames down now counts.
    """

    rule_id = "OBS003i"
    name = "obs-trace-threading"
    severity = Severity.ERROR
    invariant = (
        "every platform bus request payload demonstrably carries the trace "
        "context along every resolved call chain, and span-opening envelope "
        "handlers consult the incoming context"
    )
    scope = ("repro/platform/*",)

    TRACE_WRAPPERS = frozenset({"with_trace"})
    TRACE_KEY = "trace"
    CONSULT_MARKERS = frozenset({"extract_context", "current_context"})
    CONTEXT_PARAMS = frozenset({"trace_id", "ctx", "parent"})

    @staticmethod
    def _is_bus_request(site: CallSite) -> bool:
        return site.terminal == "request" and "bus" in site.receiver.lower()

    @staticmethod
    def _payload_token(site: CallSite) -> str | None:
        if len(site.args) >= 2:
            return site.args[1]
        return site.kwarg("payload")

    def _traced_locals(self, fn: FunctionSummary) -> set[str]:
        traced = {
            name
            for name, callee in fn.local_calls.items()
            if callee.rsplit(".", 1)[-1] in self.TRACE_WRAPPERS
        }
        traced |= {
            name
            for name, keys in fn.dict_assigns.items()
            if self.TRACE_KEY in keys
        }
        assigns = [
            (event[1], event[2])
            for node in fn.cfg.nodes
            for event in node.events
            if event[0] == "assign"
        ]
        changed = True
        while changed:
            changed = False
            for target, source in assigns:
                if target not in traced and source in traced:
                    traced.add(target)
                    changed = True
        return traced

    def _expr_traced(
        self,
        fid: FunctionId,
        fn: FunctionSummary,
        token: str,
        dict_keys: tuple[str, ...],
        traced_params: dict[tuple[FunctionId, str], bool],
        traced_locals: set[str],
    ) -> bool:
        if token.endswith("()"):
            return token[:-2].rsplit(".", 1)[-1] in self.TRACE_WRAPPERS
        if token == "{}":
            return self.TRACE_KEY in dict_keys
        base = token.split(".", 1)[0]
        if base == "self":
            return True  # state-held payloads are the owner's business
        if "." in token:
            return False
        if token in traced_locals:
            return True
        if token in fn.params:
            return traced_params.get((fid, token), True)
        return False

    def _solve_params(
        self, program: Program
    ) -> dict[tuple[FunctionId, str], bool]:
        """Greatest fixpoint: which parameters always receive traced values."""
        traced: dict[tuple[FunctionId, str], bool] = {}
        locals_cache = {
            fid: self._traced_locals(fn) for fid, fn in program.functions()
        }
        changed = True
        while changed:
            changed = False
            for fid, fn in program.functions():
                for site in fn.calls:
                    resolved = program.resolve_call_site(fid[0], fn, site)
                    if resolved is None:
                        continue
                    callee = program.function(resolved)
                    for pname, token in _map_args(site, callee):
                        key = (resolved, pname)
                        if traced.get(key, True) and not self._expr_traced(
                            fid,
                            fn,
                            token,
                            site.dict_keys,
                            traced,
                            locals_cache[fid],
                        ):
                            traced[key] = False
                            changed = True
        return traced

    def check(self, program: Program) -> Iterator[Finding]:
        findings: list[Finding] = []
        traced_params = self._solve_params(program)
        consult_direct = set()
        for fid, fn in program.functions():
            if fn.mentions & self.CONSULT_MARKERS:
                consult_direct.add(fid)
            elif any(c.terminal in self.TRACE_WRAPPERS for c in fn.calls):
                consult_direct.add(fid)
        consulters = program.transitive_closure(consult_direct, reverse=True)
        for fid, fn in program.functions():
            if not self.applies_to(fid[0]):
                continue
            summary = program.modules[fid[0]]
            traced_locals = self._traced_locals(fn)
            for site in fn.calls:
                if not self._is_bus_request(site):
                    continue
                token = self._payload_token(site)
                if token is None:
                    continue
                if not self._expr_traced(
                    fid, fn, token, site.dict_keys, traced_params, traced_locals
                ):
                    findings.append(
                        self.finding(
                            f"bus request payload in {fn.qname!r} drops the "
                            "trace context on some call chain: wrap it with "
                            "repro.obs.with_trace(...) (or carry an explicit "
                            "'trace' key) so the cross-node span tree stays "
                            "connected",
                            path=summary.path,
                            line=site.lineno,
                        )
                    )
            findings.extend(
                self._envelope_span_findings(fid, fn, summary, consulters)
            )
        return _sorted(findings)

    def _envelope_span_findings(
        self,
        fid: FunctionId,
        fn: FunctionSummary,
        summary: ModuleSummary,
        consulters: set[FunctionId],
    ) -> Iterator[Finding]:
        if not set(fn.params) & {"payload", "envelope"}:
            return
        if set(fn.params) & self.CONTEXT_PARAMS:
            return
        span_sites = [
            c
            for c in fn.calls
            if c.terminal == "span" and "tracer" in c.receiver.lower()
        ]
        if not span_sites:
            return
        if any(c.kwarg("parent") is not None for c in span_sites):
            return
        if fid in consulters:
            return
        yield self.finding(
            f"{fn.name!r} takes an envelope payload and opens spans but "
            "never consults the incoming trace context (extract_context "
            "or span(parent=...), directly or via a callee); its subtree "
            "disconnects from the caller's trace",
            path=summary.path,
            line=fn.lineno,
        )


# ---------------------------------------------------------------------------
# DET002i — RNG stream isolation across subsystems
# ---------------------------------------------------------------------------


class RngFlowRule(ProgramRule):
    """An RNG built in one subsystem must not cross into another (DET002i).

    Byte-identical reruns (paper §6; DESIGN.md §2) survive refactors
    only while each subsystem's draw order is locally determined.  An
    ``random.Random`` instance constructed in package A and handed into
    package B couples B's draw sequence to A's call order — exactly the
    coupling the roadmap's named-stream RNGManager will forbid.  The
    rule tracks RNG origins through the call graph and reports every
    call edge where an RNG value crosses a top-level package boundary.
    """

    rule_id = "DET002i"
    name = "rng-stream-isolation"
    severity = Severity.WARNING
    invariant = (
        "RNG instances do not flow across top-level subsystem boundaries; "
        "each subsystem draws from its own (named) stream"
    )

    RNG_CTORS = frozenset({"Random", "SystemRandom"})

    def _local_origins(
        self, fn: FunctionSummary, package: str
    ) -> dict[str, frozenset[str]]:
        return {
            name: frozenset({package})
            for name, callee in fn.local_calls.items()
            if callee.rsplit(".", 1)[-1] in self.RNG_CTORS
        }

    def _token_origins(
        self,
        token: str,
        fid: FunctionId,
        fn: FunctionSummary,
        summary: ModuleSummary,
        param_origins: dict[tuple[FunctionId, str], frozenset[str]],
        local_origins: dict[str, frozenset[str]],
    ) -> frozenset[str]:
        if token.endswith("()"):
            name = token[:-2].rsplit(".", 1)[-1]
            if name in self.RNG_CTORS:
                return frozenset({summary.package})
            return frozenset()
        if token.startswith("self.") and fn.class_name:
            cls = summary.classes.get(fn.class_name)
            attr = token.split(".", 1)[1]
            if cls is not None and "." not in attr:
                ctor = cls.attr_types.get(attr, "")
                if ctor.rsplit(".", 1)[-1] in self.RNG_CTORS:
                    return frozenset({summary.package})
            return frozenset()
        if "." in token:
            return frozenset()
        origins = local_origins.get(token, frozenset())
        if token in fn.params:
            origins |= param_origins.get((fid, token), frozenset())
        return origins

    def check(self, program: Program) -> Iterator[Finding]:
        findings: list[Finding] = []
        param_origins: dict[tuple[FunctionId, str], frozenset[str]] = {}
        local_cache = {
            fid: self._local_origins(fn, program.modules[fid[0]].package)
            for fid, fn in program.functions()
        }
        changed = True
        while changed:
            changed = False
            for fid, fn in program.functions():
                summary = program.modules[fid[0]]
                for site in fn.calls:
                    resolved = program.resolve_call_site(fid[0], fn, site)
                    if resolved is None:
                        continue
                    callee = program.function(resolved)
                    for pname, token in _map_args(site, callee):
                        origins = self._token_origins(
                            token,
                            fid,
                            fn,
                            summary,
                            param_origins,
                            local_cache[fid],
                        )
                        if not origins:
                            continue
                        key = (resolved, pname)
                        merged = param_origins.get(key, frozenset()) | origins
                        if merged != param_origins.get(key, frozenset()):
                            param_origins[key] = merged
                            changed = True
        for fid, fn in program.functions():
            if not self.applies_to(fid[0]):
                continue
            summary = program.modules[fid[0]]
            for site in fn.calls:
                resolved = program.resolve_call_site(fid[0], fn, site)
                if resolved is None:
                    continue
                callee_pkg = program.modules[resolved[0]].package
                if not callee_pkg:
                    continue
                callee = program.function(resolved)
                for pname, token in _map_args(site, callee):
                    origins = self._token_origins(
                        token,
                        fid,
                        fn,
                        summary,
                        param_origins,
                        local_cache[fid],
                    )
                    for origin in sorted(origins):
                        if origin and origin != callee_pkg:
                            findings.append(
                                self.finding(
                                    f"RNG created in subsystem {origin!r} "
                                    f"crosses into {callee_pkg!r} via "
                                    f"{callee.qname!r} parameter {pname!r}; "
                                    "draw order now couples the two "
                                    "subsystems (roadmap: named RNG streams)",
                                    path=summary.path,
                                    line=site.lineno,
                                )
                            )
        return _sorted(findings)


# ---------------------------------------------------------------------------
# PLAT004 — WAL append dominates index mutation
# ---------------------------------------------------------------------------


class WalOrderingRule(ProgramRule):
    """WAL append dominates every index mutation in ingest code (PLAT004).

    The durability contract (DESIGN.md §5j) is *append-before-mutate*: a
    batch must be in the write-ahead log before any store or index
    mutation it causes, so a crash mid-batch can always be replayed.
    For every ingest-path function that appends to a WAL, the rule
    demands the append **dominate** each mutation — happen on *every*
    CFG path leading to it, not just the happy one.

    Must-dominance rides the shared may-solver via its complement: the
    tracked fact is ``bare`` ("no append has happened yet"), seeded at
    entry and cleared by an append's *normal* out-edge only — an append
    that raised may never have logged, the same asymmetry RES001 uses
    for acquires.  Union-join then means a mutation node keeps ``bare``
    if *any* path reaches it un-logged, which is exactly the violation.
    """

    rule_id = "PLAT004"
    name = "wal-ordering"
    severity = Severity.ERROR
    invariant = (
        "in ingest-path code, every store/index mutation is dominated by a "
        "write-ahead-log append on every CFG path (append-before-mutate)"
    )
    #: Ingest-path modules only: the offline bootstrap (corpus build in
    #: the scenario/cli layers) predates the WAL by design.
    scope = (
        "repro/platform/ingestion.py",
        "repro/platform/segments.py",
        "repro/platform/wal.py",
    )

    BARE = "bare"
    MUTATORS = frozenset(
        {
            "store",
            "store_all",
            "delete",
            "absorb",
            "apply_batch",
            "index_batch",
            "add_entity",
            "add_entities",
            "add_judgment",
            "add_judgments",
        }
    )
    MUTABLE_RECEIVERS = ("store", "index", "live", "shard")

    @staticmethod
    def _is_append(site: CallSite) -> bool:
        return site.terminal == "append" and "wal" in site.receiver.lower()

    def _is_mutation(self, site: CallSite) -> bool:
        if site.terminal not in self.MUTATORS:
            return False
        receiver = site.receiver.lower()
        return any(token in receiver for token in self.MUTABLE_RECEIVERS)

    def check(self, program: Program) -> Iterator[Finding]:
        findings: list[Finding] = []
        for fid, fn in program.functions():
            if not self.applies_to(fid[0]):
                continue
            if not any(self._is_append(c) for c in fn.calls):
                continue
            summary = program.modules[fid[0]]
            for index in sorted(self._undominated(fn)):
                site = fn.calls[index]
                findings.append(
                    self.finding(
                        f"{site.callee}() in {fn.qname!r} mutates the "
                        "store/index on a CFG path where no WAL append has "
                        "happened yet; append the batch to the write-ahead "
                        "log before touching the index "
                        "(append-before-mutate)",
                        path=summary.path,
                        line=site.lineno,
                    )
                )
        return _sorted(findings)

    def _undominated(self, fn: FunctionSummary) -> set[int]:
        """Call indices of mutations some un-logged path can reach."""

        def transfer(node: CfgNode, facts: frozenset) -> tuple:
            # Exceptional exit keeps the in-facts: an append that raised
            # may never have reached the log.
            bare = set(facts)
            for event in node.events:
                if event[0] == EV_CALL and self._is_append(fn.calls[event[1]]):
                    bare.discard(self.BARE)
            return frozenset(bare), facts

        in_facts = forward_fixpoint(
            fn.cfg, transfer, init=frozenset({self.BARE})
        )
        flagged: set[int] = set()
        for idx, node in enumerate(fn.cfg.nodes):
            bare = self.BARE in in_facts[idx]
            for event in node.events:
                if event[0] != EV_CALL:
                    continue
                site = fn.calls[event[1]]
                if self._is_append(site):
                    bare = False
                elif bare and self._is_mutation(site):
                    flagged.add(event[1])
        return flagged


# ---------------------------------------------------------------------------
# DEAD001 — dead public symbols
# ---------------------------------------------------------------------------


class DeadSymbolRule(ProgramRule):
    """Module-level symbols nothing references anywhere (DEAD001).

    "Anywhere" means the analyzed program plus the *reference roots*
    (tests/, benchmarks/) — files that are scanned for imports and
    attribute accesses but not themselves analyzed, so a test-only API
    is alive while a re-export no test or module touches is dead.  The
    worked example: the ``platform/{entity,miners}.py`` compat shims
    re-export names (``__all__`` + import binding) that nothing imports
    through them anymore.  Import bindings are reported only when the
    module advertises them via ``__all__``; underscore names, dunders,
    ``main`` and package ``__init__``/``__main__`` files are exempt.
    """

    rule_id = "DEAD001"
    name = "dead-symbols"
    severity = Severity.WARNING
    invariant = (
        "every public module-level symbol is referenced somewhere in the "
        "project (src, tests, or benchmarks)"
    )

    def __init__(self, reference_roots: tuple[str, ...] = ()):
        self.reference_roots = tuple(str(r) for r in reference_roots)

    EXEMPT_NAMES = frozenset({"main"})
    EXEMPT_FILES = ("__init__.py", "__main__.py")

    def check(self, program: Program) -> Iterator[Finding]:
        used: set[tuple[str, str]] = set()
        for summary in program.modules.values():
            self._mark_source(
                program,
                used,
                imports=[t for t, _ in summary.import_targets],
                stars=summary.star_imports,
                base_attrs=summary.base_attr_refs,
                aliases=summary.aliases,
            )
            # Internal references within the defining module.
            for name in summary.name_refs & set(summary.top_symbols):
                used.add((summary.modpath, name))
        for scan in self._scan_reference_roots():
            self._mark_source(program, used, **scan)
        findings: list[Finding] = []
        for modpath, summary in program.modules.items():
            if not self.applies_to(modpath):
                continue
            if modpath.endswith(self.EXEMPT_FILES):
                continue
            for name, (kind, lineno) in sorted(summary.top_symbols.items()):
                if name.startswith("_") or name in self.EXEMPT_NAMES:
                    continue
                if kind == "import" and name not in summary.all_exports:
                    continue
                if (modpath, name) in used:
                    continue
                what = "re-export" if kind == "import" else kind
                findings.append(
                    self.finding(
                        f"public {what} {name!r} is referenced nowhere in "
                        "the project (src, tests, benchmarks); delete it or "
                        "add the missing consumer",
                        path=summary.path,
                        line=lineno,
                    )
                )
        return _sorted(findings)

    def _mark_source(
        self,
        program: Program,
        used: set[tuple[str, str]],
        imports: list[str],
        stars: tuple[str, ...],
        base_attrs: tuple[tuple[str, str], ...],
        aliases: dict[str, tuple[str, ...]],
    ) -> None:
        for dotted in imports:
            if program.resolve_module(dotted) is not None:
                continue  # plain module import, no symbol named
            if "." not in dotted:
                continue
            base, member = dotted.rsplit(".", 1)
            target = program.resolve_module(base)
            if target is None:
                continue
            if member in program.modules[target].top_symbols:
                used.add((target, member))
        for dotted in stars:
            target = program.resolve_module(dotted)
            if target is not None:
                for name in program.modules[target].top_symbols:
                    used.add((target, name))
        for base, attr in base_attrs:
            entry = aliases.get(base)
            if entry is None:
                continue
            if entry[0] == "module":
                target = program.resolve_module(entry[1])
            else:
                target = program.resolve_module(f"{entry[1]}.{entry[2]}")
            if target is not None:
                used.add((target, attr))

    def _scan_reference_roots(self) -> Iterator[dict]:
        for root in sorted(self.reference_roots):
            root_path = Path(root)
            if not root_path.is_dir():
                continue
            for path in sorted(root_path.rglob("*.py")):
                try:
                    tree = ast.parse(
                        path.read_text(encoding="utf-8"), filename=str(path)
                    )
                except (OSError, SyntaxError):
                    continue
                yield self._scan_tree(tree)

    @staticmethod
    def _scan_tree(tree: ast.Module) -> dict:
        imports: list[str] = []
        stars: list[str] = []
        aliases: dict[str, tuple[str, ...]] = {}
        base_attrs: set[tuple[str, str]] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports.append(alias.name)
                    bound = alias.asname or alias.name.split(".")[0]
                    dotted = alias.name if alias.asname else alias.name.split(".")[0]
                    aliases.setdefault(bound, ("module", dotted))
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        stars.append(node.module)
                        continue
                    imports.append(f"{node.module}.{alias.name}")
                    bound = alias.asname or alias.name
                    aliases.setdefault(
                        bound, ("member", node.module, alias.name)
                    )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                base_attrs.add((node.value.id, node.attr))
        return {
            "imports": imports,
            "stars": tuple(stars),
            "base_attrs": tuple(sorted(base_attrs)),
            "aliases": aliases,
        }


def default_program_rules(
    reference_roots: tuple[str, ...] = ()
) -> list[ProgramRule]:
    """The full interprocedural rule set, in report order."""
    return [
        ResourcePairRule(),
        DeadlinePropagationRule(),
        TraceThreadingRule(),
        RngFlowRule(),
        WalOrderingRule(),
        DeadSymbolRule(reference_roots=reference_roots),
    ]
