"""Whole-program model for ``repro lint``: modules, symbols, call graph.

Per-file AST rules (PR 4) cannot see a deadline dropped two calls deep
or a version pin that escapes through a helper.  This module builds the
project-wide picture those checks need, once per lint run:

* a **module import graph** over the ``repro`` package (every static
  and function-local import, resolved through relative imports), with
  the reverse-dependency cone used by ``--changed-only`` and the
  incremental cache;
* a **symbol table** — module-level functions, classes and assignments,
  class methods with ``self``-attribute types inferred from
  constructor assignments in any method;
* a **conservative call graph** — call sites resolved through import
  aliases, local constructor assignments, ``self`` attributes, and
  intra-module names; unresolvable receivers simply contribute no edge
  (rules that need them fall back to method-name indexes);
* per-function **CFG summaries** (:mod:`repro.analysis.dataflow`) so
  rules can run path-sensitive analyses without re-walking the AST.

Everything is dependency-free (stdlib ``ast``), deterministic (all
iteration orders are sorted), and JSON-serializable so the incremental
lint cache (:mod:`repro.analysis.cache`) can persist summaries keyed by
file content hash: a warm run re-analyzes nothing that did not change.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .dataflow import EV_ASSIGN, EV_CALL, CfgNode, FunctionCfg, build_cfg

# ---------------------------------------------------------------------------
# tokens: compact, serializable expression descriptions
# ---------------------------------------------------------------------------


def expr_token(node: ast.expr | None) -> str:
    """A compact token for an expression: dotted names kept, rest folded.

    ``self._index.pin`` stays dotted; calls become ``f()``; dict
    literals become ``{}``; constants ``<const>``; anything else ``?``.
    """
    if node is None:
        return "<none>"
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = expr_token(node.value)
        return f"{base}.{node.attr}"
    if isinstance(node, ast.Call):
        return f"{expr_token(node.func)}()"
    if isinstance(node, ast.Dict):
        return "{}"
    if isinstance(node, ast.Constant):
        return "<const>"
    if isinstance(node, ast.Starred):
        return expr_token(node.value)
    return "?"


def _identifiers(node: ast.AST) -> set[str]:
    """Every Name id and Attribute attr appearing under *node*."""
    out: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            out.add(child.id)
        elif isinstance(child, ast.Attribute):
            out.add(child.attr)
    return out


def _dict_keys(node: ast.AST) -> set[str]:
    """String keys of every dict literal under *node* (recursively)."""
    keys: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            for key in child.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
    return keys


# ---------------------------------------------------------------------------
# summaries
# ---------------------------------------------------------------------------


@dataclass
class CallSite:
    """One call expression inside a function."""

    callee: str  # dotted token of the call target, e.g. "self._index.pin"
    lineno: int
    args: tuple[str, ...] = ()  # token per positional argument
    kwargs: tuple[tuple[str, str], ...] = ()  # (keyword, token) pairs
    mentions: tuple[str, ...] = ()  # sorted identifiers under the whole call
    dict_keys: tuple[str, ...] = ()  # string keys of dict literals in the args
    target: str = ""  # local name the result is bound to ("" if none)

    @property
    def terminal(self) -> str:
        """Last component of the callee token (the method/function name)."""
        return self.callee.rsplit(".", 1)[-1]

    @property
    def receiver(self) -> str:
        """Everything before the last dot ("" for bare names)."""
        if "." not in self.callee:
            return ""
        return self.callee.rsplit(".", 1)[0]

    def kwarg(self, name: str) -> str | None:
        for key, token in self.kwargs:
            if key == name:
                return token
        return None

    def to_dict(self) -> dict:
        return {
            "callee": self.callee,
            "lineno": self.lineno,
            "args": list(self.args),
            "kwargs": [list(kv) for kv in self.kwargs],
            "mentions": list(self.mentions),
            "dict_keys": list(self.dict_keys),
            "target": self.target,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CallSite":
        return cls(
            callee=payload["callee"],
            lineno=payload["lineno"],
            args=tuple(payload["args"]),
            kwargs=tuple((k, v) for k, v in payload["kwargs"]),
            mentions=tuple(payload["mentions"]),
            dict_keys=tuple(payload["dict_keys"]),
            target=payload["target"],
        )


@dataclass
class FunctionSummary:
    """One function or method: signature, call sites, CFG."""

    qname: str  # "helper" or "Class.method" or "outer.inner"
    name: str
    lineno: int
    class_name: str = ""  # enclosing class ("" for module level)
    params: tuple[str, ...] = ()  # positional + kw-only, minus self/cls
    decorators: tuple[str, ...] = ()
    calls: list[CallSite] = field(default_factory=list)
    cfg: FunctionCfg = field(default_factory=FunctionCfg)
    mentions: frozenset[str] = frozenset()  # identifiers anywhere in the body
    #: local name → callee token of the call whose result it holds (last wins).
    local_calls: dict[str, str] = field(default_factory=dict)
    #: local name → string keys of the dict literal assigned to it.
    dict_assigns: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def call_sites(self, terminal: str | None = None) -> Iterator[CallSite]:
        for call in self.calls:
            if terminal is None or call.terminal == terminal:
                yield call

    def to_dict(self) -> dict:
        return {
            "qname": self.qname,
            "name": self.name,
            "lineno": self.lineno,
            "class_name": self.class_name,
            "params": list(self.params),
            "decorators": list(self.decorators),
            "calls": [c.to_dict() for c in self.calls],
            "cfg": self.cfg.to_dict(),
            "mentions": sorted(self.mentions),
            "local_calls": dict(sorted(self.local_calls.items())),
            "dict_assigns": {
                k: list(v) for k, v in sorted(self.dict_assigns.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionSummary":
        return cls(
            qname=payload["qname"],
            name=payload["name"],
            lineno=payload["lineno"],
            class_name=payload["class_name"],
            params=tuple(payload["params"]),
            decorators=tuple(payload["decorators"]),
            calls=[CallSite.from_dict(c) for c in payload["calls"]],
            cfg=FunctionCfg.from_dict(payload["cfg"]),
            mentions=frozenset(payload["mentions"]),
            local_calls=dict(payload["local_calls"]),
            dict_assigns={
                k: tuple(v) for k, v in payload["dict_assigns"].items()
            },
        )


@dataclass
class ClassSummary:
    """One class: bases, methods, and inferred self-attribute types."""

    name: str
    lineno: int
    bases: tuple[str, ...] = ()  # tokens, e.g. "CodeRule", "abc.ABC"
    methods: tuple[str, ...] = ()  # method names (summaries live on the module)
    #: self attribute → callee token of the constructor that filled it,
    #: e.g. {"_rng": "random.Random", "_latency": "LatencyModel"}.
    attr_types: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "attr_types": dict(sorted(self.attr_types.items())),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClassSummary":
        return cls(
            name=payload["name"],
            lineno=payload["lineno"],
            bases=tuple(payload["bases"]),
            methods=tuple(payload["methods"]),
            attr_types=dict(payload["attr_types"]),
        )


@dataclass
class ModuleSummary:
    """Everything the program model keeps about one source file."""

    modpath: str  # "repro/platform/serving/router.py"
    path: str  # display path as given to the linter
    digest: str  # content hash (sha256 hex) of the source
    module: str = ""  # dotted name, "repro.platform.serving.router"
    package: str = ""  # top-level subsystem, e.g. "platform"
    #: local alias → ("module", dotted) or ("member", base_module, member).
    aliases: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: absolute dotted import targets (module or module-member) + lineno.
    import_targets: list[tuple[str, int]] = field(default_factory=list)
    #: module-level symbol name → (kind, lineno); kind in
    #: {"function", "class", "assign", "import"}.
    top_symbols: dict[str, tuple[str, int]] = field(default_factory=dict)
    all_exports: tuple[str, ...] = ()  # names listed in __all__
    star_imports: tuple[str, ...] = ()  # modules star-imported (dotted)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    name_refs: frozenset[str] = frozenset()  # every Name load in the module
    attr_refs: frozenset[str] = frozenset()  # every attribute name used
    #: (base_name, attr) pairs — possible module-alias member accesses.
    base_attr_refs: tuple[tuple[str, str], ...] = ()

    def functions_named(self, name: str) -> Iterator[FunctionSummary]:
        for fn in self.functions.values():
            if fn.name == name:
                yield fn

    def to_dict(self) -> dict:
        return {
            "modpath": self.modpath,
            "path": self.path,
            "digest": self.digest,
            "module": self.module,
            "package": self.package,
            "aliases": {k: list(v) for k, v in sorted(self.aliases.items())},
            "import_targets": [list(t) for t in self.import_targets],
            "top_symbols": {k: list(v) for k, v in sorted(self.top_symbols.items())},
            "all_exports": list(self.all_exports),
            "star_imports": list(self.star_imports),
            "functions": {k: f.to_dict() for k, f in sorted(self.functions.items())},
            "classes": {k: c.to_dict() for k, c in sorted(self.classes.items())},
            "name_refs": sorted(self.name_refs),
            "attr_refs": sorted(self.attr_refs),
            "base_attr_refs": sorted([list(p) for p in self.base_attr_refs]),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModuleSummary":
        return cls(
            modpath=payload["modpath"],
            path=payload["path"],
            digest=payload["digest"],
            module=payload["module"],
            package=payload["package"],
            aliases={k: tuple(v) for k, v in payload["aliases"].items()},
            import_targets=[(t, n) for t, n in payload["import_targets"]],
            top_symbols={k: (v[0], v[1]) for k, v in payload["top_symbols"].items()},
            all_exports=tuple(payload["all_exports"]),
            star_imports=tuple(payload["star_imports"]),
            functions={
                k: FunctionSummary.from_dict(f)
                for k, f in payload["functions"].items()
            },
            classes={
                k: ClassSummary.from_dict(c) for k, c in payload["classes"].items()
            },
            name_refs=frozenset(payload["name_refs"]),
            attr_refs=frozenset(payload["attr_refs"]),
            base_attr_refs=tuple((b, a) for b, a in payload["base_attr_refs"]),
        )


# ---------------------------------------------------------------------------
# summary construction
# ---------------------------------------------------------------------------


def content_digest(source: bytes) -> str:
    return hashlib.sha256(source).hexdigest()


def module_dotted(modpath: str) -> str:
    """``repro/platform/api.py`` → ``repro.platform.api``."""
    dotted = modpath.removesuffix(".py").replace("/", ".")
    return dotted.removesuffix(".__init__")


def module_package(modpath: str) -> str:
    """Top-level subsystem of a module path (``platform``, ``core``, …)."""
    parts = modpath.split("/")
    if len(parts) < 2 or parts[0] != "repro":
        return ""
    if len(parts) == 2:
        return parts[1].removesuffix(".py")
    return parts[1]


def _resolve_relative(modpath: str, level: int, module: str | None) -> str | None:
    """Absolute dotted target of a relative import from *modpath*."""
    parts = modpath.removesuffix(".py").split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1]  # the containing package
    # level 1 = this package, each extra level pops one more.
    for _ in range(level - 1):
        if not parts:
            return None
        parts = parts[:-1]
    if not parts:
        return None
    base = ".".join(parts)
    return f"{base}.{module}" if module else base


class _FunctionVisitor:
    """Builds one FunctionSummary: call table, CFG events, mentions."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef, qname: str,
                 class_name: str):
        args = fn.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        self.summary = FunctionSummary(
            qname=qname,
            name=fn.name,
            lineno=fn.lineno,
            class_name=class_name,
            params=tuple(params),
            decorators=tuple(expr_token(d) for d in fn.decorator_list),
            mentions=frozenset(_identifiers(fn)),
        )
        self.summary.cfg = build_cfg(fn, self._register)

    # -- event extraction --------------------------------------------------------

    def _own_exprs(self, stmt: ast.stmt) -> list[ast.expr]:
        """Expressions evaluated by *stmt* itself (not nested statements)."""
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, ast.Try):
            return []
        if isinstance(stmt, ast.Assign):
            return [stmt.value]
        if isinstance(stmt, ast.AnnAssign):
            return [stmt.value] if stmt.value is not None else []
        if isinstance(stmt, ast.AugAssign):
            return [stmt.value]
        if isinstance(stmt, ast.Return):
            return [stmt.value] if stmt.value is not None else []
        if isinstance(stmt, ast.Expr):
            return [stmt.value]
        if isinstance(stmt, ast.Raise):
            return [e for e in (stmt.exc, stmt.cause) if e is not None]
        if isinstance(stmt, ast.Assert):
            return [e for e in (stmt.test, stmt.msg) if e is not None]
        if isinstance(stmt, ast.Delete):
            return list(stmt.targets)
        return []

    def _register(self, stmt: ast.stmt, node: CfgNode) -> None:
        target = ""
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            if isinstance(stmt.targets[0], ast.Name):
                target = stmt.targets[0].id
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            target = stmt.target.id
        calls: list[ast.Call] = []
        for expr in self._own_exprs(stmt):
            for child in ast.walk(expr):
                if isinstance(child, ast.Call):
                    calls.append(child)
        for call in calls:
            # The assignment target belongs to the outermost call only.
            is_outer = isinstance(stmt, (ast.Assign, ast.AnnAssign)) and (
                call is getattr(stmt, "value", None)
            )
            index = len(self.summary.calls)
            site = CallSite(
                callee=expr_token(call.func),
                lineno=call.lineno,
                args=tuple(expr_token(a) for a in call.args),
                kwargs=tuple(
                    (k.arg or "**", expr_token(k.value)) for k in call.keywords
                ),
                mentions=tuple(sorted(_identifiers(call))),
                dict_keys=tuple(sorted(_dict_keys(call))),
                target=target if is_outer else "",
            )
            self.summary.calls.append(site)
            node.events.append((EV_CALL, index))
            if site.target:
                self.summary.local_calls[site.target] = site.callee
        if target and isinstance(getattr(stmt, "value", None), (ast.Name, ast.Attribute)):
            node.events.append((EV_ASSIGN, target, expr_token(stmt.value)))
        if target and isinstance(getattr(stmt, "value", None), ast.Dict):
            self.summary.dict_assigns[target] = tuple(
                sorted(_dict_keys(stmt.value))
            )


class _ModuleVisitor:
    """Builds one :class:`ModuleSummary` from a parsed module."""

    def __init__(self, modpath: str, path: str, digest: str):
        self.summary = ModuleSummary(
            modpath=modpath,
            path=path,
            digest=digest,
            module=module_dotted(modpath),
            package=module_package(modpath),
        )

    def visit(self, tree: ast.Module) -> ModuleSummary:
        summary = self.summary
        self._collect_imports(tree)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summary.top_symbols[stmt.name] = ("function", stmt.lineno)
                self._function(stmt, prefix="", class_name="")
            elif isinstance(stmt, ast.ClassDef):
                summary.top_symbols[stmt.name] = ("class", stmt.lineno)
                self._class(stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            summary.all_exports = self._string_list(stmt.value)
                        else:
                            summary.top_symbols.setdefault(
                                target.id, ("assign", stmt.lineno)
                            )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                summary.top_symbols.setdefault(
                    stmt.target.id, ("assign", stmt.lineno)
                )
        refs: set[str] = set()
        attrs: set[str] = set()
        base_attrs: set[tuple[str, str]] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                refs.add(node.id)
            elif isinstance(node, ast.Attribute):
                attrs.add(node.attr)
                if isinstance(node.value, ast.Name):
                    base_attrs.add((node.value.id, node.attr))
        summary.name_refs = frozenset(refs)
        summary.attr_refs = frozenset(attrs)
        summary.base_attr_refs = tuple(sorted(base_attrs))
        return summary

    @staticmethod
    def _string_list(node: ast.expr) -> tuple[str, ...]:
        if isinstance(node, (ast.List, ast.Tuple)):
            return tuple(
                e.value
                for e in node.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            )
        return ()

    def _collect_imports(self, tree: ast.Module) -> None:
        summary = self.summary
        module_level = set(id(s) for s in tree.body)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    summary.import_targets.append((alias.name, node.lineno))
                    bound = alias.asname or alias.name.split(".")[0]
                    dotted = alias.name if alias.asname else alias.name.split(".")[0]
                    entry = ("module", dotted)
                    summary.aliases.setdefault(bound, entry)
                    if id(node) in module_level and alias.asname:
                        summary.top_symbols.setdefault(
                            bound, ("import", node.lineno)
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = _resolve_relative(
                        summary.modpath, node.level, node.module
                    )
                else:
                    base = node.module
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        summary.star_imports = summary.star_imports + (base,)
                        continue
                    summary.import_targets.append(
                        (f"{base}.{alias.name}", node.lineno)
                    )
                    bound = alias.asname or alias.name
                    summary.aliases.setdefault(
                        bound, ("member", base, alias.name)
                    )
                    if id(node) in module_level:
                        summary.top_symbols.setdefault(
                            bound, ("import", node.lineno)
                        )

    def _function(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        class_name: str,
    ) -> None:
        qname = f"{prefix}{fn.name}"
        visitor = _FunctionVisitor(fn, qname, class_name)
        self.summary.functions[qname] = visitor.summary
        for stmt in ast.walk(fn):
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt is not fn
                and self._innermost_parent(fn, stmt) is fn
            ):
                self._function(stmt, prefix=f"{qname}.", class_name=class_name)

    @staticmethod
    def _innermost_parent(root: ast.AST, target: ast.AST) -> ast.AST | None:
        """The innermost function/class enclosing *target* inside *root*."""
        parent: ast.AST | None = None

        def walk(node: ast.AST, current: ast.AST) -> None:
            nonlocal parent
            for child in ast.iter_child_nodes(node):
                if child is target:
                    parent = current
                    return
                next_scope = (
                    child
                    if isinstance(
                        child,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    )
                    else current
                )
                walk(child, next_scope)

        walk(root, root)
        return parent

    def _class(self, cls: ast.ClassDef) -> None:
        methods: list[str] = []
        attr_types: dict[str, str] = {}
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                self._function(stmt, prefix=f"{cls.name}.", class_name=cls.name)
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                        continue
                    target = node.targets[0]
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(node.value, ast.Call)
                    ):
                        attr_types.setdefault(
                            target.attr, expr_token(node.value.func)
                        )
        self.summary.classes[cls.name] = ClassSummary(
            name=cls.name,
            lineno=cls.lineno,
            bases=tuple(expr_token(b) for b in cls.bases),
            methods=tuple(methods),
            attr_types=attr_types,
        )


def summarize_module(
    modpath: str, path: str, tree: ast.Module, digest: str
) -> ModuleSummary:
    """Build the serializable summary of one parsed module."""
    return _ModuleVisitor(modpath, path, digest).visit(tree)


# ---------------------------------------------------------------------------
# the program
# ---------------------------------------------------------------------------

#: A function's project-wide id: (modpath, qname).
FunctionId = tuple[str, str]


class Program:
    """The whole-program model rules query (see module docstring)."""

    def __init__(self, modules: Iterable[ModuleSummary]):
        self.modules: dict[str, ModuleSummary] = {
            m.modpath: m for m in sorted(modules, key=lambda m: m.modpath)
        }
        self.by_dotted: dict[str, str] = {}
        for modpath, summary in self.modules.items():
            self.by_dotted.setdefault(summary.module, modpath)
        self._import_graph: dict[str, set[str]] | None = None
        self._reverse_imports: dict[str, set[str]] | None = None
        self._call_edges: dict[FunctionId, set[FunctionId]] | None = None
        self._reverse_calls: dict[FunctionId, set[FunctionId]] | None = None

    # -- lookup ------------------------------------------------------------------

    def module(self, modpath: str) -> ModuleSummary | None:
        return self.modules.get(modpath)

    def function(self, fid: FunctionId) -> FunctionSummary | None:
        summary = self.modules.get(fid[0])
        if summary is None:
            return None
        return summary.functions.get(fid[1])

    def functions(self) -> Iterator[tuple[FunctionId, FunctionSummary]]:
        for modpath in self.modules:
            for qname, fn in sorted(self.modules[modpath].functions.items()):
                yield (modpath, qname), fn

    def resolve_module(self, dotted: str) -> str | None:
        """Project modpath of a dotted module name, if it is ours."""
        return self.by_dotted.get(dotted)

    # -- import graph ------------------------------------------------------------

    @property
    def import_graph(self) -> dict[str, set[str]]:
        """modpath → set of project modpaths it imports."""
        if self._import_graph is None:
            graph: dict[str, set[str]] = {m: set() for m in self.modules}
            for modpath, summary in self.modules.items():
                for dotted, _lineno in summary.import_targets:
                    target = self.by_dotted.get(dotted)
                    if target is None and "." in dotted:
                        # "pkg.mod.symbol" → try the containing module.
                        target = self.by_dotted.get(dotted.rsplit(".", 1)[0])
                    if target is not None and target != modpath:
                        graph[modpath].add(target)
                for dotted in summary.star_imports:
                    target = self.by_dotted.get(dotted)
                    if target is not None and target != modpath:
                        graph[modpath].add(target)
            self._import_graph = graph
        return self._import_graph

    @property
    def reverse_imports(self) -> dict[str, set[str]]:
        if self._reverse_imports is None:
            reverse: dict[str, set[str]] = {m: set() for m in self.modules}
            for modpath, targets in self.import_graph.items():
                for target in targets:
                    reverse[target].add(modpath)
            self._reverse_imports = reverse
        return self._reverse_imports

    def dependency_cone(self, modpaths: Iterable[str]) -> set[str]:
        """*modpaths* plus every module that transitively imports them."""
        cone: set[str] = set()
        frontier = [m for m in modpaths if m in self.modules]
        while frontier:
            modpath = frontier.pop()
            if modpath in cone:
                continue
            cone.add(modpath)
            frontier.extend(self.reverse_imports.get(modpath, ()))
        return cone

    # -- call graph --------------------------------------------------------------

    def _resolve_call(
        self, summary: ModuleSummary, fn: FunctionSummary, site: CallSite
    ) -> FunctionId | None:
        parts = site.callee.split(".")
        # Bare name: local function, imported symbol, or class constructor.
        if len(parts) == 1:
            return self._resolve_name(summary, parts[0])
        head, rest = parts[0], parts[1:]
        if head == "self" and fn.class_name:
            cls = summary.classes.get(fn.class_name)
            if cls is None:
                return None
            if len(rest) == 1:
                return self._resolve_method(summary, fn.class_name, rest[0])
            # self.attr.method — via the inferred attribute type.
            if len(rest) == 2 and rest[0] in cls.attr_types:
                return self._resolve_constructed(
                    summary, cls.attr_types[rest[0]], rest[1]
                )
            return None
        if len(rest) == 1:
            # local = Class(...); local.method(...)
            ctor = fn.local_calls.get(head)
            if ctor is not None:
                resolved = self._resolve_constructed(summary, ctor, rest[0])
                if resolved is not None:
                    return resolved
            # alias.member(...) — module alias call.
            entry = summary.aliases.get(head)
            if entry is not None and entry[0] == "module":
                target = self.by_dotted.get(entry[1])
                if target is not None:
                    return self._resolve_name(self.modules[target], rest[0], local_only=True)
        return None

    def _resolve_name(
        self, summary: ModuleSummary, name: str, local_only: bool = False
    ) -> FunctionId | None:
        if name in summary.functions:
            return (summary.modpath, name)
        if name in summary.classes:
            init = f"{name}.__init__"
            if init in summary.functions:
                return (summary.modpath, init)
            return None
        if local_only:
            return None
        entry = summary.aliases.get(name)
        if entry is not None and entry[0] == "member":
            target = self.by_dotted.get(entry[1])
            if target is not None:
                return self._resolve_name(
                    self.modules[target], entry[2], local_only=False
                )
        return None

    def _resolve_method(
        self, summary: ModuleSummary, class_name: str, method: str
    ) -> FunctionId | None:
        cls = summary.classes.get(class_name)
        if cls is None:
            return None
        qname = f"{class_name}.{method}"
        if qname in summary.functions:
            return (summary.modpath, qname)
        for base in cls.bases:
            base_name = base.split(".")[-1]
            resolved = self._resolve_class(summary, base_name)
            if resolved is None:
                continue
            base_mod, base_cls = resolved
            found = self._resolve_method(self.modules[base_mod], base_cls, method)
            if found is not None:
                return found
        return None

    def _resolve_class(
        self, summary: ModuleSummary, name: str
    ) -> tuple[str, str] | None:
        """(modpath, class name) for a class token seen in *summary*."""
        if name in summary.classes:
            return (summary.modpath, name)
        entry = summary.aliases.get(name)
        if entry is not None and entry[0] == "member":
            target = self.by_dotted.get(entry[1])
            if target is not None and entry[2] in self.modules[target].classes:
                return (target, entry[2])
        return None

    def _resolve_constructed(
        self, summary: ModuleSummary, ctor_token: str, method: str
    ) -> FunctionId | None:
        """Resolve ``<ctor_token> instance>.method`` to a project method."""
        name = ctor_token.split(".")[-1].removesuffix("()")
        resolved = self._resolve_class(summary, name)
        if resolved is None:
            return None
        return self._resolve_method(self.modules[resolved[0]], resolved[1], method)

    @property
    def call_edges(self) -> dict[FunctionId, set[FunctionId]]:
        """Conservatively resolved call graph (sorted, deterministic)."""
        if self._call_edges is None:
            edges: dict[FunctionId, set[FunctionId]] = {}
            for fid, fn in self.functions():
                summary = self.modules[fid[0]]
                out: set[FunctionId] = set()
                for site in fn.calls:
                    resolved = self._resolve_call(summary, fn, site)
                    if resolved is not None:
                        out.add(resolved)
                edges[fid] = out
            self._call_edges = edges
        return self._call_edges

    @property
    def reverse_calls(self) -> dict[FunctionId, set[FunctionId]]:
        if self._reverse_calls is None:
            reverse: dict[FunctionId, set[FunctionId]] = {}
            for caller, callees in self.call_edges.items():
                for callee in callees:
                    reverse.setdefault(callee, set()).add(caller)
            self._reverse_calls = reverse
        return self._reverse_calls

    def resolve_call_site(
        self, modpath: str, fn: FunctionSummary, site: CallSite
    ) -> FunctionId | None:
        """Public per-site resolution (used by rules for argument flow)."""
        summary = self.modules.get(modpath)
        if summary is None:
            return None
        return self._resolve_call(summary, fn, site)

    def transitive_closure(
        self, seeds: Iterable[FunctionId], reverse: bool = False
    ) -> set[FunctionId]:
        """All functions reachable from *seeds* along (reverse) call edges."""
        graph = self.reverse_calls if reverse else self.call_edges
        seen: set[FunctionId] = set()
        frontier = list(seeds)
        while frontier:
            fid = frontier.pop()
            if fid in seen:
                continue
            seen.add(fid)
            frontier.extend(graph.get(fid, ()))
        return seen

    # -- debug export ------------------------------------------------------------

    def graph_dict(self) -> dict:
        """Deterministic nodes/edges export for ``--graph-out``."""
        nodes = [
            {
                "id": f"{fid[0]}::{fid[1]}",
                "module": fid[0],
                "qname": fid[1],
                "lineno": fn.lineno,
            }
            for fid, fn in self.functions()
        ]
        edges = sorted(
            {
                (f"{caller[0]}::{caller[1]}", f"{callee[0]}::{callee[1]}")
                for caller, callees in self.call_edges.items()
                for callee in callees
            }
        )
        imports = sorted(
            (source, target)
            for source, targets in self.import_graph.items()
            for target in targets
        )
        return {
            "functions": nodes,
            "call_edges": [{"caller": c, "callee": e} for c, e in edges],
            "import_edges": [{"importer": s, "imported": t} for s, t in imports],
        }


def build_program(
    summaries: Iterable[ModuleSummary],
) -> Program:
    return Program(summaries)


def parse_and_summarize(path: str | Path, modpath: str) -> ModuleSummary:
    """Parse one file from disk and summarize it (tests and tools)."""
    raw = Path(path).read_bytes()
    tree = ast.parse(raw.decode("utf-8"), filename=str(path))
    return summarize_module(modpath, str(path), tree, content_digest(raw))
