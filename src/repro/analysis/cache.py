"""Content-hash incremental cache for ``repro lint``.

The whole-program pass (:mod:`repro.analysis.program`) needs a summary
of *every* module, but most lint runs touch only a handful of files.
The cache keeps, per module path, the sha256 of the source it last saw
together with the serialized :class:`ModuleSummary` and the per-file
code-rule findings.  On a warm run an unchanged file is neither
re-parsed nor re-checked: its summary and findings are loaded verbatim
(findings re-enter suppression matching fresh each run, so suppression
edits always take effect without invalidating the cache).

Invalidation is deliberately blunt and safe:

* the whole cache is dropped when :data:`CACHE_SCHEMA_VERSION` changes
  (bump it whenever summary or finding shape changes), and
* when the *rule fingerprint* — the sorted ids and severities of the
  configured per-file code rules — differs, because cached findings are
  only valid for the rule set that produced them.

Program rules are never cached: they are cheap once summaries exist,
and their findings depend on every module at once.
"""

from __future__ import annotations

import json
from pathlib import Path

from .findings import Finding, Severity
from .program import ModuleSummary

#: Bump whenever the cached summary/finding shape changes.
CACHE_SCHEMA_VERSION = 1

#: Conventional cache file name at the repository root.
CACHE_FILENAME = ".lint-cache.json"


def rule_fingerprint(rules) -> str:
    """Identity of a per-file rule set, for cache invalidation."""
    return ",".join(
        sorted(f"{r.rule_id}:{int(r.severity)}" for r in rules)
    )


def _finding_from_dict(payload: dict) -> Finding:
    return Finding(
        rule=payload["rule"],
        severity=Severity.parse(payload["severity"]),
        message=payload["message"],
        path=payload["path"],
        line=payload["line"],
    )


class LintCache:
    """Digest-keyed store of module summaries and per-file findings."""

    def __init__(self, path: str | Path | None, fingerprint: str = ""):
        self.path = Path(path) if path is not None else None
        self.fingerprint = fingerprint
        self._entries: dict[str, dict] = {}
        self._dirty = False
        if self.path is not None and self.path.is_file():
            self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return
        if payload.get("fingerprint") != self.fingerprint:
            return
        files = payload.get("files")
        if isinstance(files, dict):
            self._entries = files

    # -- lookup / store ----------------------------------------------------------

    def lookup(
        self, modpath: str, digest: str, display: str
    ) -> tuple[ModuleSummary | None, list[Finding]] | None:
        """Cached (summary, findings) for *modpath* iff the digest matches.

        Returns ``None`` on a miss.  A hit with ``summary is None`` means
        the file failed to parse last time (and still has the same
        content); its cached findings carry the syntax error.
        """
        entry = self._entries.get(modpath)
        if entry is None or entry.get("digest") != digest:
            return None
        raw_summary = entry.get("summary")
        try:
            summary = (
                ModuleSummary.from_dict(raw_summary)
                if raw_summary is not None
                else None
            )
            findings = [_finding_from_dict(f) for f in entry.get("findings", [])]
        except (KeyError, TypeError, ValueError):
            return None
        if summary is not None:
            summary.path = display
        for finding in findings:
            finding.path = display
        return summary, findings

    def store(
        self,
        modpath: str,
        digest: str,
        summary: ModuleSummary | None,
        findings: list[Finding],
    ) -> None:
        self._entries[modpath] = {
            "digest": digest,
            "summary": summary.to_dict() if summary is not None else None,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    def prune(self, live_modpaths: set[str]) -> None:
        """Drop entries for files that no longer exist in the linted set."""
        stale = [m for m in self._entries if m not in live_modpaths]
        for modpath in stale:
            del self._entries[modpath]
            self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "files": {k: self._entries[k] for k in sorted(self._entries)},
        }
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
            )
        except OSError:
            pass
        self._dirty = False
