"""AST code rules: determinism, layering, obs discipline, Vinci contract.

All rules work on stdlib ``ast`` trees — no third-party dependency, no
imports of the code under analysis.  Each rule states the invariant it
protects; DESIGN.md's "Static analysis & invariants" section mirrors
this list.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..obs.metrics import METRIC_NAME_RE
from .engine import CodeRule
from .findings import Finding, Severity

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> str | None:
    """The dotted name of an attribute chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _receiver_text(node: ast.AST) -> str:
    """Lower-cased source text of a call receiver (best effort)."""
    dotted = _dotted(node)
    if dotted is not None:
        return dotted.lower()
    try:
        return ast.unparse(node).lower()
    except Exception:  # pragma: no cover — unparse is total on valid trees
        return ""


def _str_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments."""
    out: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, str):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = node.value.value
    return out


def _class_str_constants(cls: ast.ClassDef) -> dict[str, str]:
    """Class-level ``NAME = "literal"`` assignments."""
    out: dict[str, str] = {}
    for node in cls.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, str):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = node.value.value
    return out


# ---------------------------------------------------------------------------
# DET001 — wall-clock ban
# ---------------------------------------------------------------------------

#: Attribute chains that read the host clock (nondeterministic under
#: simulation — all timing must come from the SimClock).
_WALL_CLOCK_CHAINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Names that must not be imported from ``time`` directly.
_WALL_CLOCK_TIME_NAMES = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)


class WallClockRule(CodeRule):
    """Byte-determinism: no host-clock reads anywhere in the system."""

    rule_id = "DET001"
    name = "determinism-wall-clock"
    severity = Severity.ERROR
    invariant = (
        "simulated runs are byte-deterministic: all timing flows through "
        "repro.obs.clock.SimClock, never the host clock"
    )

    def check(self, path: str, modpath: str, tree: ast.Module) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                chain = _dotted(node)
                if chain in _WALL_CLOCK_CHAINS:
                    yield self.finding(
                        f"wall-clock read {chain!r}: use the SimClock "
                        "(repro.obs.clock) so runs stay deterministic",
                        path=path,
                        line=node.lineno,
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_TIME_NAMES:
                        yield self.finding(
                            f"import of time.{alias.name}: use the SimClock "
                            "(repro.obs.clock) so runs stay deterministic",
                            path=path,
                            line=node.lineno,
                        )


# ---------------------------------------------------------------------------
# DET002 — seeded RNG discipline
# ---------------------------------------------------------------------------


class SeededRngRule(CodeRule):
    """Every RNG is an explicitly seeded ``random.Random(seed)`` instance."""

    rule_id = "DET002"
    name = "determinism-rng"
    severity = Severity.ERROR
    invariant = (
        "every random draw comes from an explicitly seeded random.Random "
        "instance — never the shared module-level RNG or OS entropy"
    )

    def check(self, path: str, modpath: str, tree: ast.Module) -> Iterator[Finding]:
        random_aliases = {"random"}  # names bound to the random module
        bare_random_class: set[str] = set()  # names bound to random.Random
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name == "Random":
                        bare_random_class.add(alias.asname or "Random")
                    else:
                        yield self.finding(
                            f"import of random.{alias.name}: module-level random "
                            "functions share hidden global state; construct a "
                            "seeded random.Random instead",
                            path=path,
                            line=node.lineno,
                        )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                if func.value.id not in random_aliases:
                    continue
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            "unseeded random.Random(): pass an explicit seed "
                            "so runs stay reproducible",
                            path=path,
                            line=node.lineno,
                        )
                elif func.attr == "SystemRandom":
                    yield self.finding(
                        "random.SystemRandom draws OS entropy and can never "
                        "be reproduced; use a seeded random.Random",
                        path=path,
                        line=node.lineno,
                    )
                else:
                    yield self.finding(
                        f"module-level random.{func.attr}(): shared global RNG "
                        "state breaks run-to-run determinism; use a seeded "
                        "random.Random instance",
                        path=path,
                        line=node.lineno,
                    )
            elif isinstance(func, ast.Name) and func.id in bare_random_class:
                if not node.args and not node.keywords:
                    yield self.finding(
                        "unseeded Random(): pass an explicit seed so runs "
                        "stay reproducible",
                        path=path,
                        line=node.lineno,
                    )


# ---------------------------------------------------------------------------
# ARCH001 — import layering
# ---------------------------------------------------------------------------

#: Package → rank in the import DAG.  An import is legal only when the
#: importing package's rank is strictly greater than the imported one's
#: (intra-package imports are always fine).  This encodes
#: ``lexicons/nlp → core/miners → platform → cli`` plus the auxiliary
#: packages that grew around it.
LAYER_RANKS: dict[str, int] = {
    # foundation: pure data + leaf utilities, import nothing from repro
    "obs": 0,
    "lexicons": 0,
    "nlp": 0,
    # the sentiment core (also hosts the entity model + miner framework)
    "core": 1,
    # adapters and generators over the core
    "miners": 2,
    "corpora": 2,
    "baselines": 2,
    # the simulated WebFountain platform
    "platform": 3,
    # evaluation harness and applications
    "eval": 4,
    "apps": 5,
    # tooling and entry points
    "analysis": 6,
    "__init__": 7,
    "cli": 8,
    "__main__": 9,
}


def _source_package(modpath: str) -> str | None:
    """The layer name of a module path like ``repro/platform/vinci.py``."""
    parts = modpath.split("/")
    if len(parts) < 2 or parts[0] != "repro":
        return None
    if len(parts) == 2:  # repro/cli.py, repro/__init__.py, repro/__main__.py
        return parts[1].removesuffix(".py")
    return parts[1]


class LayeringRule(CodeRule):
    """No upward imports in the package DAG."""

    rule_id = "ARCH001"
    name = "import-layering"
    severity = Severity.ERROR
    invariant = (
        "imports respect the DAG lexicons/nlp -> core/miners -> platform -> "
        "cli (full rank table in repro.analysis.code_rules.LAYER_RANKS)"
    )

    def check(self, path: str, modpath: str, tree: ast.Module) -> Iterator[Finding]:
        source = _source_package(modpath)
        if source is None or source not in LAYER_RANKS:
            return
        source_rank = LAYER_RANKS[source]
        for node in ast.walk(tree):
            for target, lineno in _import_targets(node, modpath):
                if target == source or target not in LAYER_RANKS:
                    continue
                target_rank = LAYER_RANKS[target]
                if target_rank >= source_rank:
                    yield self.finding(
                        f"layering violation: {source!r} (rank {source_rank}) "
                        f"imports {target!r} (rank {target_rank}); the DAG "
                        "only allows imports of strictly lower-ranked layers",
                        path=path,
                        line=lineno,
                    )


def _import_targets(node: ast.AST, modpath: str) -> list[tuple[str, int]]:
    """Top-level repro packages referenced by one import statement."""
    depth = modpath.count("/")  # repro/cli.py → 1; repro/platform/x.py → 2
    targets: list[tuple[str, int]] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro":
                targets.append((parts[1] if len(parts) > 1 else "__init__", node.lineno))
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            parts = (node.module or "").split(".")
            if parts[0] == "repro":
                targets.append((parts[1] if len(parts) > 1 else "__init__", node.lineno))
        else:
            # Relative import: resolve against this module's depth.  From
            # repro/<pkg>/mod.py, level 1 is the same package (never a
            # violation) and level 2 reaches repro's top level; from
            # repro/mod.py, level 1 already reaches the top level.
            top_level = node.level == depth
            if top_level:
                if node.module:
                    targets.append((node.module.split(".")[0], node.lineno))
                else:  # "from . import x" at the top level
                    for alias in node.names:
                        if alias.name == "__version__":
                            continue  # metadata from the facade, not a layer
                        targets.append((alias.name, node.lineno))
    return targets


# ---------------------------------------------------------------------------
# OBS001 — spans only via context manager
# ---------------------------------------------------------------------------


class SpanContextRule(CodeRule):
    """Tracer spans are opened with ``with`` so they always close."""

    rule_id = "OBS001"
    name = "obs-span-context"
    severity = Severity.ERROR
    invariant = (
        "tracer spans are only opened as context managers (with "
        "tracer.span(...)), so every span closes and nests correctly"
    )

    def check(self, path: str, modpath: str, tree: ast.Module) -> Iterator[Finding]:
        with_items: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "span"):
                continue
            if "tracer" not in _receiver_text(func.value):
                continue
            if id(node) not in with_items:
                yield self.finding(
                    "tracer span opened outside a with-statement; spans must "
                    "be context-managed so they always close",
                    path=path,
                    line=node.lineno,
                )


# ---------------------------------------------------------------------------
# OBS002 — metric names match the registry's naming regex
# ---------------------------------------------------------------------------

_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


class MetricNameRule(CodeRule):
    """Literal metric names satisfy the registry's naming regex."""

    rule_id = "OBS002"
    name = "obs-metric-name"
    severity = Severity.ERROR
    invariant = (
        "every metric name statically resolvable at a registry call site "
        "matches repro.obs.metrics.METRIC_NAME_RE"
    )

    def check(self, path: str, modpath: str, tree: ast.Module) -> Iterator[Finding]:
        module_consts = _str_constants(tree)
        class_consts: dict[str, dict[str, str]] = {}
        enclosing: dict[int, str] = {}
        for cls in ast.walk(tree):
            if isinstance(cls, ast.ClassDef):
                class_consts[cls.name] = _class_str_constants(cls)
                for child in ast.walk(cls):
                    enclosing.setdefault(id(child), cls.name)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in _METRIC_METHODS):
                continue
            receiver = _receiver_text(func.value)
            if "metric" not in receiver and "registry" not in receiver:
                continue
            name = self._resolve_name(node, module_consts, class_consts,
                                      enclosing.get(id(node)))
            if name is None:
                continue  # not statically resolvable — runtime check covers it
            if not METRIC_NAME_RE.match(name):
                yield self.finding(
                    f"metric name {name!r} does not match the registry "
                    f"naming regex {METRIC_NAME_RE.pattern}",
                    path=path,
                    line=node.lineno,
                )

    @staticmethod
    def _resolve_name(
        call: ast.Call,
        module_consts: dict[str, str],
        class_consts: dict[str, dict[str, str]],
        enclosing_class: str | None,
    ) -> str | None:
        arg: ast.expr | None = call.args[0] if call.args else None
        if arg is None:
            for keyword in call.keywords:
                if keyword.arg == "name":
                    arg = keyword.value
                    break
        if arg is None:
            return None
        if isinstance(arg, ast.Constant):
            return arg.value if isinstance(arg.value, str) else None
        if isinstance(arg, ast.Name):
            return module_consts.get(arg.id)
        if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
            owner = arg.value.id
            if owner in ("self", "cls") and enclosing_class:
                return class_consts.get(enclosing_class, {}).get(arg.attr)
            return class_consts.get(owner, {}).get(arg.attr)
        return None


# ---------------------------------------------------------------------------
# PLAT001 — Vinci handler contract
# ---------------------------------------------------------------------------


def _is_dictish_annotation(node: ast.expr) -> bool:
    # "Envelope" is repro.platform.api's dict alias for v1 responses.
    if isinstance(node, ast.Name):
        return node.id in ("dict", "Dict", "Envelope")
    if isinstance(node, ast.Subscript):
        return _is_dictish_annotation(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].strip() in ("dict", "Dict", "Envelope")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Dict", "Envelope")
    return False


def _obviously_not_dict(node: ast.expr) -> bool:
    return isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.ListComp,
                             ast.SetComp, ast.GeneratorExp, ast.JoinedStr)) or (
        isinstance(node, ast.Constant) and not isinstance(node.value, dict)
    )


class VinciHandlerRule(CodeRule):
    """Registered Vinci service handlers take/return dict envelopes."""

    rule_id = "PLAT001"
    name = "vinci-handler-contract"
    severity = Severity.ERROR
    invariant = (
        "every handler registered on a Vinci bus takes exactly one dict "
        "payload and returns a dict envelope"
    )
    scope = ("repro/platform/*", "repro/apps/*", "repro/cli.py")

    def check(self, path: str, modpath: str, tree: ast.Module) -> Iterator[Finding]:
        functions: dict[str, ast.FunctionDef] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Last definition wins; ambiguity is fine for a lint pass.
                functions[node.name] = node
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "register"):
                continue
            if "bus" not in _receiver_text(func.value):
                continue
            if len(node.args) < 2:
                continue
            handler = node.args[1]
            if isinstance(handler, ast.Lambda):
                yield from self._check_lambda(handler, path)
            elif isinstance(handler, ast.Name) and handler.id in functions:
                yield from self._check_function(functions[handler.id], path)

    def _check_lambda(self, handler: ast.Lambda, path: str) -> Iterator[Finding]:
        args = handler.args
        n_params = len(args.posonlyargs) + len(args.args)
        if n_params != 1 or args.vararg or args.kwarg or args.kwonlyargs:
            yield self.finding(
                "Vinci handler must take exactly one dict payload argument",
                path=path,
                line=handler.lineno,
            )
        if _obviously_not_dict(handler.body):
            yield self.finding(
                "Vinci handler must return a dict envelope",
                path=path,
                line=handler.lineno,
            )

    def _check_function(self, fn: ast.FunctionDef, path: str) -> Iterator[Finding]:
        args = fn.args
        params = [a.arg for a in args.posonlyargs + args.args]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        if len(params) != 1 or args.vararg or args.kwarg or args.kwonlyargs:
            yield self.finding(
                f"Vinci handler {fn.name!r} must take exactly one dict "
                "payload argument",
                path=path,
                line=fn.lineno,
            )
        if fn.returns is not None and not _is_dictish_annotation(fn.returns):
            yield self.finding(
                f"Vinci handler {fn.name!r} must be annotated to return a "
                "dict envelope",
                path=path,
                line=fn.lineno,
            )
        for node in ast.walk(fn):
            if isinstance(node, ast.Return):
                if node.value is None or _obviously_not_dict(node.value):
                    yield self.finding(
                        f"Vinci handler {fn.name!r} must return a dict "
                        "envelope on every path",
                        path=path,
                        line=node.lineno,
                    )


# ---------------------------------------------------------------------------
# PLAT002 — serving discipline: deadlines propagate, queues are bounded
# ---------------------------------------------------------------------------


def _deque_maxlen_bounded(call: ast.Call) -> bool:
    """True when a ``deque(...)`` call has a non-None maxlen."""
    if len(call.args) >= 2:
        arg = call.args[1]
        return not (isinstance(arg, ast.Constant) and arg.value is None)
    for keyword in call.keywords:
        if keyword.arg == "maxlen":
            value = keyword.value
            return not (isinstance(value, ast.Constant) and value.value is None)
    return False


def _queue_maxsize_bounded(call: ast.Call) -> bool:
    """True when a ``queue.Queue(...)`` call has a bounding maxsize."""
    candidates: list[ast.expr] = list(call.args[:1])
    candidates.extend(k.value for k in call.keywords if k.arg == "maxsize")
    for value in candidates:
        if isinstance(value, ast.Constant) and (
            value.value is None or (isinstance(value.value, int) and value.value <= 0)
        ):
            return False
        return True
    return False


class ServingDisciplineRule(CodeRule):
    """Serving handlers honour deadlines; serving queues are bounded.

    Two invariants from the overload model (DESIGN.md §5e):

    * every ``answer*`` handler in the serving layer takes a ``deadline``
      parameter and actually consults it — a handler that ignores its
      deadline can serve work late;
    * no unbounded queues: every ``deque`` carries a ``maxlen`` and every
      ``queue.Queue`` a positive ``maxsize``, so overload sheds requests
      explicitly instead of growing memory without bound.
    """

    rule_id = "PLAT002"
    name = "serving-discipline"
    severity = Severity.ERROR
    invariant = (
        "serving answer* handlers accept and consult a 'deadline' parameter, "
        "and every queue in platform/serving is bounded"
    )
    scope = ("repro/platform/serving/*",)

    def check(self, path: str, modpath: str, tree: ast.Module) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("answer"):
                    yield from self._check_handler(node, path)
            elif isinstance(node, ast.Call):
                yield from self._check_queue(node, path)

    def _check_handler(self, fn: ast.FunctionDef, path: str) -> Iterator[Finding]:
        args = fn.args
        params = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
        if "deadline" not in params:
            yield self.finding(
                f"serving handler {fn.name!r} must accept a 'deadline' "
                "parameter so request budgets propagate downstream",
                path=path,
                line=fn.lineno,
            )
            return
        used = any(
            isinstance(node, ast.Name) and node.id == "deadline"
            for body_node in fn.body
            for node in ast.walk(body_node)
        )
        if not used:
            yield self.finding(
                f"serving handler {fn.name!r} accepts a deadline but never "
                "consults it; expired work could be served late",
                path=path,
                line=fn.lineno,
            )

    def _check_queue(self, call: ast.Call, path: str) -> Iterator[Finding]:
        func = call.func
        name = func.id if isinstance(func, ast.Name) else None
        if name is None and isinstance(func, ast.Attribute):
            name = func.attr
        if name == "deque":
            if not _deque_maxlen_bounded(call):
                yield self.finding(
                    "unbounded deque in the serving layer: pass maxlen= so "
                    "overload sheds explicitly instead of growing memory",
                    path=path,
                    line=call.lineno,
                )
        elif name == "Queue" or (_dotted(func) or "").endswith("queue.Queue"):
            if name in ("Queue",) and not _queue_maxsize_bounded(call):
                yield self.finding(
                    "unbounded Queue in the serving layer: pass a positive "
                    "maxsize so overload sheds explicitly",
                    path=path,
                    line=call.lineno,
                )


# ---------------------------------------------------------------------------
# PLAT003 — the v1 envelope is the only response shape
# ---------------------------------------------------------------------------

#: Names whose call results are v1 envelopes by construction.
_ENVELOPE_BUILDERS = frozenset({"ok_envelope", "error_envelope"})

#: Modules whose client-facing handlers must return envelopes.
_HANDLER_MODULES = (
    "repro/platform/services.py",
    "repro/platform/serving/router.py",
)


def _envelope_keyset(node: ast.Dict) -> set[str]:
    return {
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def _looks_like_envelope(node: ast.Dict) -> bool:
    """A dict literal shaped like a response envelope."""
    keys = _envelope_keyset(node)
    if "api_version" in keys:
        return True
    return "ok" in keys and bool(keys & {"data", "error", "meta"})


def _terminal_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class EnvelopeSchemaRule(CodeRule):
    """Responses are v1 envelopes built only through ``repro.platform.api``.

    Two checks (DESIGN.md §5f / the v1 API contract):

    * no raw envelope-shaped dict literals (``api_version`` key, or
      ``ok`` alongside ``data``/``error``/``meta``) anywhere in the
      platform or apps outside ``platform/api.py`` — the constructors
      are the single source of the schema;
    * every client-facing handler in ``platform/services.py`` and
      ``platform/serving/router.py`` (functions registered on the bus,
      ``handle`` methods, ``answer_*`` methods, and entries of a
      ``bindings`` dict) returns through the envelope constructors on
      every path, directly or via helpers that do (computed to a
      fixpoint over the module's functions).
    """

    rule_id = "PLAT003"
    name = "api-envelope-schema"
    severity = Severity.ERROR
    invariant = (
        "every service/router response is a v1 envelope built by "
        "repro.platform.api constructors; no raw envelope dict literals "
        "outside platform/api.py"
    )
    scope = ("repro/platform/*", "repro/apps/*")

    def check(self, path: str, modpath: str, tree: ast.Module) -> Iterator[Finding]:
        if modpath == "repro/platform/api.py":
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Dict) and _looks_like_envelope(node):
                yield self.finding(
                    "raw envelope dict literal: build responses with "
                    "repro.platform.api.ok_envelope/error_envelope so the "
                    "v1 schema has a single source",
                    path=path,
                    line=node.lineno,
                )
        if modpath in _HANDLER_MODULES:
            yield from self._check_handlers(tree, path)

    def _check_handlers(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        functions: dict[str, ast.FunctionDef] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[node.name] = node
        envelope_fns = self._envelope_fixpoint(functions)
        for name in sorted(self._handler_names(tree)):
            fn = functions.get(name)
            if fn is None or name in envelope_fns:
                continue
            for ret in ast.walk(fn):
                if isinstance(ret, ast.Return) and not self._returns_envelope(
                    ret, envelope_fns
                ):
                    yield self.finding(
                        f"handler {name!r} has a return path that does not "
                        "flow through the v1 envelope constructors "
                        "(api.ok_envelope/api.error_envelope)",
                        path=path,
                        line=ret.lineno,
                    )

    @staticmethod
    def _handler_names(tree: ast.Module) -> set[str]:
        """Client-facing handlers: bus registrations + handle/answer_*."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == "handle" or node.name.startswith("answer_"):
                    names.add(node.name)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "register"
                    and "bus" in _receiver_text(func.value)
                    and len(node.args) >= 2
                ):
                    handler = _terminal_name(node.args[1])
                    if handler is not None:
                        names.add(handler)
            elif isinstance(node, ast.Assign):
                # bindings = {"service.name": obj.method, ...}
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if "bindings" in targets and isinstance(node.value, ast.Dict):
                    for value in node.value.values:
                        handler = _terminal_name(value)
                        if handler is not None:
                            names.add(handler)
        return names

    def _envelope_fixpoint(self, functions: dict[str, ast.FunctionDef]) -> set[str]:
        """Functions all of whose return paths produce envelopes."""
        known = set(_ENVELOPE_BUILDERS)
        changed = True
        while changed:
            changed = False
            for name, fn in functions.items():
                if name in known:
                    continue
                returns = [
                    node
                    for node in ast.walk(fn)
                    if isinstance(node, ast.Return) and node.value is not None
                ]
                if not returns:
                    continue
                if all(self._returns_envelope(r, known) for r in returns):
                    known.add(name)
                    changed = True
        return known

    @staticmethod
    def _returns_envelope(ret: ast.Return, known: set[str]) -> bool:
        value = ret.value
        if value is None:
            return False
        if isinstance(value, ast.Call):
            name = _terminal_name(value.func)
            return name is not None and name in known
        # A bare name (e.g. a pre-built error envelope held in a local)
        # is not statically resolvable; trust it — the dict-literal check
        # above still catches hand-rolled envelopes feeding it.
        return isinstance(value, ast.Name)


# ---------------------------------------------------------------------------
# OBS003 — trace context threads through every bus request
# ---------------------------------------------------------------------------

#: Call names whose result carries the trace context by construction.
_TRACE_WRAPPERS = frozenset({"with_trace"})


def _dict_has_trace_key(node: ast.Dict) -> bool:
    for key in node.keys:
        if isinstance(key, ast.Constant) and key.value == "trace":
            return True
        if isinstance(key, ast.Name) and key.id == "TRACE_KEY":
            return True
        if isinstance(key, ast.Attribute) and key.attr == "TRACE_KEY":
            return True
    return False


class TraceContextRule(CodeRule):
    """Every platform bus request carries the caller's trace context.

    The cross-node span tree (DESIGN.md §5h) only stays connected when
    each hop re-injects the current :class:`~repro.obs.context.TraceContext`
    into the payload it sends.  Two checks over ``repro/platform``:

    * every ``<bus>.request(service, payload)`` call passes a payload
      that demonstrably carries the context — a ``with_trace(...)``
      call, a dict literal with a ``"trace"``/``TRACE_KEY`` key, a local
      assigned from one of those, or a parameter of the enclosing
      function (the caller already owns propagation);
    * every function that takes a ``payload``/``envelope`` parameter
      and opens tracer spans consults the incoming context — it calls
      ``extract_context`` or passes ``parent=`` to some span — instead
      of silently starting a disconnected subtree.
    """

    rule_id = "OBS003"
    name = "obs-trace-propagation"
    severity = Severity.ERROR
    invariant = (
        "every bus request in repro/platform sends a trace-carrying payload "
        "(with_trace or an explicit 'trace' key), and envelope-handling "
        "functions that open spans consult the incoming context"
    )
    scope = ("repro/platform/*",)

    def check(self, path: str, modpath: str, tree: ast.Module) -> Iterator[Finding]:
        calls: list[tuple[ast.Call, ast.AST]] = []
        self._collect_calls(tree, tree, calls)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_envelope_spans(
                    node, self._params(node), path
                )
        traced_cache: dict[int, set[str]] = {}
        for node, scope in calls:
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "request"):
                continue
            if "bus" not in _receiver_text(func.value):
                continue
            payload = self._payload_arg(node)
            if payload is None:
                continue
            params = self._params(scope)
            if id(scope) not in traced_cache:
                traced_cache[id(scope)] = self._traced_names(scope, params)
            if not self._carries_trace(payload, traced_cache[id(scope)], params):
                yield self.finding(
                    "bus request payload drops the trace context: wrap it "
                    "with repro.obs.with_trace(...) (or carry an explicit "
                    "'trace' key) so the cross-node span tree stays "
                    "connected",
                    path=path,
                    line=node.lineno,
                )

    @classmethod
    def _collect_calls(
        cls,
        node: ast.AST,
        scope: ast.AST,
        out: list[tuple[ast.Call, ast.AST]],
    ) -> None:
        """Every Call paired with its innermost enclosing function scope."""
        for child in ast.iter_child_nodes(node):
            child_scope = (
                child
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                else scope
            )
            if isinstance(child, ast.Call):
                out.append((child, child_scope))
            cls._collect_calls(child, child_scope, out)

    @staticmethod
    def _params(scope: ast.AST) -> set[str]:
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return set()
        args = scope.args
        params = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
        params.discard("self")
        params.discard("cls")
        return params

    @staticmethod
    def _payload_arg(call: ast.Call) -> ast.expr | None:
        if len(call.args) >= 2:
            return call.args[1]
        for keyword in call.keywords:
            if keyword.arg == "payload":
                return keyword.value
        return None

    def _traced_names(self, scope: ast.AST, params: set[str]) -> set[str]:
        """Names in *scope* assigned from trace-carrying expressions."""
        traced: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in ast.walk(scope):
                if not isinstance(node, ast.Assign):
                    continue
                if not self._carries_trace(node.value, traced, params):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in traced:
                        traced.add(target.id)
                        changed = True
        return traced

    def _carries_trace(
        self, node: ast.expr, traced_names: set[str], params: set[str]
    ) -> bool:
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            return name in _TRACE_WRAPPERS
        if isinstance(node, ast.Dict):
            return _dict_has_trace_key(node)
        if isinstance(node, ast.Name):
            return node.id in traced_names or node.id in params
        return False

    def _check_envelope_spans(
        self, fn: ast.FunctionDef, params: set[str], path: str
    ) -> Iterator[Finding]:
        if not params & {"payload", "envelope"}:
            return
        # A trace_id/ctx parameter means the caller already resolved the
        # context and threads it explicitly.
        consults_context = bool(params & {"trace_id", "ctx", "parent"})
        span_calls: list[ast.Call] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and node.attr == "current_context":
                consults_context = True
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name == "extract_context" or name in _TRACE_WRAPPERS:
                consults_context = True
            elif name == "span" and "tracer" in _receiver_text(
                getattr(node.func, "value", ast.Constant(value=None))
            ):
                span_calls.append(node)
                if any(k.arg == "parent" for k in node.keywords):
                    consults_context = True
        if span_calls and not consults_context:
            yield self.finding(
                f"{fn.name!r} takes an envelope payload and opens spans but "
                "never consults the incoming trace context (extract_context "
                "or span(parent=...)); its subtree disconnects from the "
                "caller's trace",
                path=path,
                line=fn.lineno,
            )


def default_code_rules() -> list[CodeRule]:
    """The full per-file rule set, in report order.

    OBS003 (:class:`TraceContextRule`) is no longer part of the default
    set: the interprocedural OBS003i in
    :mod:`repro.analysis.program_rules` supersedes its per-file
    heuristic.  The class stays importable for targeted use.
    """
    return [
        WallClockRule(),
        SeededRngRule(),
        LayeringRule(),
        SpanContextRule(),
        MetricNameRule(),
        VinciHandlerRule(),
        ServingDisciplineRule(),
        EnvelopeSchemaRule(),
    ]
