"""The collocation baseline (paper Section 4.2, Table 4).

"The collocation algorithm assigns the polarity of a sentiment term to a
subject term in the same sentence.  If positive and negative sentiment
terms co-exist, the polarity with more counts is selected."

No parsing, no target association: every subject spot in a sentence
inherits the sentence's majority sentiment-term polarity.  The paper
measures 18% precision at 70% recall for this baseline on the review
datasets — high recall (it fires whenever any lexicon word appears) and
terrible precision (it cannot tell *whose* sentiment it is).
"""

from __future__ import annotations

from ..core.lexicon import SentimentLexicon, default_lexicon
from ..core.model import Polarity, Provenance, SentimentJudgment, Spot, Subject
from ..core.spotting import SubjectSpotter
from ..nlp.postagger import PosTagger
from ..nlp.sentences import SentenceSplitter
from ..nlp.tokens import Sentence, TaggedSentence


class CollocationBaseline:
    """Majority-vote sentence polarity assigned to every co-occurring spot."""

    def __init__(self, lexicon: SentimentLexicon | None = None):
        self._lexicon = lexicon if lexicon is not None else default_lexicon()
        self._tagger = PosTagger(extra_lexicon=self._lexicon.tagger_entries())
        self._splitter = SentenceSplitter()

    def sentence_polarity(self, tagged: TaggedSentence) -> tuple[Polarity, tuple[str, ...]]:
        """Majority polarity over the sentence's sentiment terms."""
        positive = 0
        negative = 0
        words: list[str] = []
        for token in tagged.tokens:
            polarity = self._lexicon.polarity(token.text, token.tag)
            if polarity is Polarity.POSITIVE:
                positive += 1
                words.append(token.lower)
            elif polarity is Polarity.NEGATIVE:
                negative += 1
                words.append(token.lower)
        if positive > negative:
            return Polarity.POSITIVE, tuple(words)
        if negative > positive:
            return Polarity.NEGATIVE, tuple(words)
        return Polarity.NEUTRAL, tuple(words)

    def judge_spots(self, sentence: Sentence, spots: list[Spot]) -> list[SentimentJudgment]:
        """Every spot in the sentence gets the sentence polarity."""
        tagged = self._tagger.tag(sentence)
        polarity, words = self.sentence_polarity(tagged)
        provenance = Provenance(pattern="collocation", sentiment_words=words)
        return [
            SentimentJudgment(
                spot=spot,
                polarity=polarity,
                provenance=provenance,
                sentence_span=tagged.span,
            )
            for spot in spots
        ]

    def analyze_text(
        self, text: str, subjects: list[Subject], document_id: str = ""
    ) -> list[SentimentJudgment]:
        """Spot subjects and judge them sentence-by-sentence."""
        spotter = SubjectSpotter(subjects)
        judgments: list[SentimentJudgment] = []
        for sentence in self._splitter.split_text(text):
            spots = spotter.spot_sentence(sentence, document_id)
            if spots:
                judgments.extend(self.judge_spots(sentence, spots))
        return judgments
