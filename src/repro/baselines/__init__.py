"""Comparator algorithms the paper evaluates against (Tables 4–5)."""

from .collocation import CollocationBaseline
from .reviewseer import ClassifierScores, ReviewSeerClassifier, extract_features

__all__ = [
    "ClassifierScores",
    "CollocationBaseline",
    "ReviewSeerClassifier",
    "extract_features",
]
