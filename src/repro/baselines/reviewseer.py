"""A ReviewSeer-like statistical opinion classifier (Dave et al. 2003).

ReviewSeer is "a document level opinion classifier that uses mainly
statistical techniques"; it "achieved high accuracy on review articles,
but the performance sharply degrades when applied to sentences with
subject terms from the general web documents" (paper Section 1.1).

This reproduction implements the method class faithfully: a multinomial
Naive Bayes classifier over unigram + bigram features, trained on
document-polarity-labelled reviews, with a log-odds neutrality band so it
can abstain (the paper's accuracy numbers include neutral cases).  It has
*no* notion of a sentiment target — which is exactly the failure mode the
paper demonstrates on multi-subject general-web sentences.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from ..core.model import Polarity
from ..nlp.tokenizer import Tokenizer

#: Tokens ignored as features (high-frequency closed-class noise).
_STOPWORDS = frozenset(
    "the a an of in on at to for with and or but is are was were be been "
    "i it this that these those my your his her its our their".split()
)


def extract_features(text: str, tokenizer: Tokenizer | None = None) -> list[str]:
    """Unigram + bigram features, lowercased, stopword-filtered unigrams."""
    tokenizer = tokenizer or Tokenizer()
    words = [t.lower for t in tokenizer.tokenize(text) if any(c.isalnum() for c in t.text)]
    features = [w for w in words if w not in _STOPWORDS]
    features.extend(f"{a}_{b}" for a, b in zip(words, words[1:]))
    return features


@dataclass(frozen=True)
class ClassifierScores:
    """Per-class log-likelihoods plus the decision margin."""

    log_positive: float
    log_negative: float

    @property
    def margin(self) -> float:
        return self.log_positive - self.log_negative


class ReviewSeerClassifier:
    """Multinomial Naive Bayes with a neutrality band.

    Parameters
    ----------
    neutral_margin:
        Decision band half-width: predictions whose absolute log-odds
        margin falls below it come out NEUTRAL.  Zero makes the
        classifier always choose a polar class.
    smoothing:
        Laplace smoothing constant.
    """

    def __init__(self, neutral_margin: float = 1.0, smoothing: float = 1.0):
        if neutral_margin < 0:
            raise ValueError("neutral_margin must be non-negative")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self._neutral_margin = neutral_margin
        self._smoothing = smoothing
        self._tokenizer = Tokenizer()
        self._positive_counts: Counter[str] = Counter()
        self._negative_counts: Counter[str] = Counter()
        self._positive_total = 0
        self._negative_total = 0
        self._positive_docs = 0
        self._negative_docs = 0
        self._vocabulary: set[str] = set()

    # -- training -------------------------------------------------------------------

    def train(self, positive_docs: Iterable[str], negative_docs: Iterable[str]) -> None:
        """Fit on document-polarity-labelled review texts."""
        for text in positive_docs:
            features = extract_features(text, self._tokenizer)
            self._positive_counts.update(features)
            self._positive_total += len(features)
            self._positive_docs += 1
            self._vocabulary.update(features)
        for text in negative_docs:
            features = extract_features(text, self._tokenizer)
            self._negative_counts.update(features)
            self._negative_total += len(features)
            self._negative_docs += 1
            self._vocabulary.update(features)
        if not self._positive_docs or not self._negative_docs:
            raise ValueError("training needs documents of both polarities")

    @property
    def is_trained(self) -> bool:
        return bool(self._positive_docs and self._negative_docs)

    @property
    def vocabulary_size(self) -> int:
        return len(self._vocabulary)

    # -- scoring ---------------------------------------------------------------------

    def scores(self, text: str) -> ClassifierScores:
        """Class log-likelihoods for *text* (requires training)."""
        if not self.is_trained:
            raise RuntimeError("classifier is not trained")
        features = extract_features(text, self._tokenizer)
        vocab = len(self._vocabulary) or 1
        smoothing = self._smoothing
        log_positive = math.log(self._positive_docs / (self._positive_docs + self._negative_docs))
        log_negative = math.log(self._negative_docs / (self._positive_docs + self._negative_docs))
        for feature in features:
            if feature not in self._vocabulary:
                continue  # unseen features carry no signal either way
            log_positive += math.log(
                (self._positive_counts[feature] + smoothing)
                / (self._positive_total + smoothing * vocab)
            )
            log_negative += math.log(
                (self._negative_counts[feature] + smoothing)
                / (self._negative_total + smoothing * vocab)
            )
        return ClassifierScores(log_positive, log_negative)

    def classify(self, text: str) -> Polarity:
        """Polar decision with the neutrality band."""
        scores = self.scores(text)
        if abs(scores.margin) <= self._neutral_margin:
            return Polarity.NEUTRAL
        return Polarity.POSITIVE if scores.margin > 0 else Polarity.NEGATIVE

    def classify_document(self, text: str) -> Polarity:
        """Document-level decision (ReviewSeer's native task): no band."""
        scores = self.scores(text)
        if scores.margin == 0:
            return Polarity.NEUTRAL
        return Polarity.POSITIVE if scores.margin > 0 else Polarity.NEGATIVE

    def classify_sentence(self, sentence_text: str) -> Polarity:
        """Sentence-level decision — how the paper applied ReviewSeer to
        general web documents ("on the individual sentences with a
        subject word")."""
        return self.classify(sentence_text)
