"""Simulated clock for observability timestamps.

The platform has no wall clock: cluster nodes account *simulated work
units* (see :mod:`repro.platform.cluster`), and retries charge backoff in
the same currency.  Span timestamps therefore come from a
:class:`SimClock` that instrumented components advance by exactly the
cost they charge — a span's duration *is* its simulated cost, and traces
stay deterministic run-to-run.

A tiny epsilon tick on span start keeps sibling spans ordered even when
no cost lands between them.
"""

from __future__ import annotations

#: Advance applied by :meth:`SimClock.tick` — small enough never to
#: perturb cost-derived durations, large enough to order siblings.
TICK = 1e-6


class SimClock:
    """A monotonic simulated clock measured in work units."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, units: float) -> float:
        """Move the clock forward by *units* (must be non-negative)."""
        if units < 0:
            raise ValueError("the simulated clock cannot run backwards")
        self._now += units
        return self._now

    def tick(self) -> float:
        """Minimal advance used to order otherwise-simultaneous events."""
        self._now += TICK
        return self._now

    def reset(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
