"""The ops health surface: one snapshot of the whole serving system.

:func:`health_snapshot` assembles everything an operator would ask
first — queue depth, response mix, breaker states, per-replica segment
logs and compaction backlog, active version pins, ingest counters, NLP
memo hit rates, SLO burn rates, and stage-latency histograms whose slow
buckets carry exemplar trace ids — into one JSON-safe dict, and
:func:`render_health` prints it as the ``repro health`` text view.

The function is duck-typed over the router / live-indexer objects (it
reads only public introspection surfaces), so this module stays in the
dependency-free ``obs`` layer without importing ``platform``.
"""

from __future__ import annotations

from typing import Any

from .metrics import Histogram, MetricsRegistry

#: Stage-latency histograms surfaced with p95 + exemplar trace ids.
STAGE_HISTOGRAMS = (
    ("queue_wait", "serving.queue_wait"),
    ("read", "serving.latency"),
    ("total", "serving.request_latency"),
    ("ingest_lag", "ingest.lag"),
)

#: Memo names mirrored into the ``nlp.memo_*`` series by the analyzer.
MEMO_NAMES = ("split", "tag", "parse")


def _series_values(metrics: MetricsRegistry, name: str) -> dict[str, float]:
    """``label-set -> value`` for every non-histogram series of *name*."""
    out: dict[str, float] = {}
    for labels, instrument in metrics.series(name):
        if isinstance(instrument, Histogram):
            continue
        key = ",".join(f"{k}={v}" for k, v in labels) or "total"
        out[key] = instrument.value
    return out


def _histogram_summary(hist: Histogram) -> dict[str, float | int]:
    return {
        "count": hist.count,
        "mean": round(hist.mean, 6),
        "p50_le": hist.quantile_bound(0.5),
        "p95_le": hist.quantile_bound(0.95),
        "p95_exemplar_trace": hist.exemplar_for_quantile(0.95),
    }


def _memo_rates(metrics: MetricsRegistry) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for memo in MEMO_NAMES:
        hits = metrics.value("nlp.memo_hits", memo=memo)
        misses = metrics.value("nlp.memo_misses", memo=memo)
        evictions = metrics.value("nlp.memo_evictions", memo=memo)
        lookups = hits + misses
        out[memo] = {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        }
    return out


def health_snapshot(
    obs: Any,
    *,
    router: Any = None,
    live_indexer: Any = None,
    slo: Any = None,
    recovery: Any = None,
    wal: Any = None,
) -> dict[str, Any]:
    """One ops snapshot; every section is optional except time + memos."""
    metrics = obs.metrics
    snap: dict[str, Any] = {"sim_time": obs.clock.now}
    if router is not None:
        snap["serving"] = {
            "queue_depth": router.queue_depth,
            "requests": _series_values(metrics, "serving.requests"),
            "responses": _series_values(metrics, "serving.responses"),
            "hedges": metrics.value("serving.hedges"),
            "hedge_wins": metrics.value("serving.hedge_wins"),
            "failovers": metrics.value("serving.failovers"),
            "cancelled_reads": metrics.value("serving.cancelled_reads"),
            "breakers": router.breaker_snapshots(),
        }
        index = router.index
        replicas = []
        for shard_id in index.shard_ids():
            for replica in index.replicas_for(shard_id):
                replicas.append(
                    {
                        "shard": replica.shard_id,
                        "replica": replica.replica,
                        "node": replica.node_id,
                        "segments": len(replica.segments),
                        "latest_version": replica.latest_version,
                    }
                )
        index_section: dict[str, Any] = {
            "current_version": index.current_version,
            "active_pins": {
                str(v): n for v, n in sorted(index.active_pins().items())
            },
            "compaction_floor": index.compaction_floor(),
            "max_segment_count": index.max_segment_count(),
            "replicas": replicas,
        }
        if live_indexer is not None:
            index_section["compaction_backlog"] = max(
                0, index.max_segment_count() - live_indexer.policy.max_segments
            )
        snap["index"] = index_section
    if live_indexer is not None:
        snap["ingest"] = {
            "batches_applied": live_indexer.batches_applied,
            "documents_indexed": live_indexer.documents_indexed,
            "docs": _series_values(metrics, "ingest.docs"),
            "deletes": _series_values(metrics, "ingest.deletes"),
            "compaction_runs": metrics.value("compaction.runs"),
            "compaction_merged_docs": metrics.value("compaction.merged_docs"),
        }
    snap["memos"] = _memo_rates(metrics)
    stages: dict[str, Any] = {}
    for stage, name in STAGE_HISTOGRAMS:
        for labels, instrument in metrics.series(name):
            if isinstance(instrument, Histogram) and not labels:
                stages[stage] = _histogram_summary(instrument)
    snap["stage_latency"] = stages
    if recovery is not None:
        snap["recovery"] = recovery.snapshot()
    if wal is not None:
        snap["wal"] = wal.snapshot()
    if slo is not None:
        snap["slo"] = slo.status_snapshot()
    return snap


def _fmt(value: float) -> str:
    return f"{value:g}"


def render_health(snap: dict[str, Any]) -> str:
    """The ``repro health`` text view of one snapshot."""
    lines: list[str] = [f"health @ sim_time={_fmt(snap['sim_time'])}"]
    serving = snap.get("serving")
    if serving:
        lines.append("")
        lines.append("serving")
        lines.append(f"  queue_depth      {_fmt(serving['queue_depth'])}")
        responses = ", ".join(
            f"{key}={_fmt(val)}" for key, val in sorted(serving["responses"].items())
        )
        lines.append(f"  responses        {responses or '(none)'}")
        lines.append(
            "  hedges           "
            f"{_fmt(serving['hedges'])} ({_fmt(serving['hedge_wins'])} wins)"
        )
        lines.append(f"  failovers        {_fmt(serving['failovers'])}")
        lines.append(f"  cancelled_reads  {_fmt(serving['cancelled_reads'])}")
        for breaker in serving["breakers"]:
            lines.append(
                f"  breaker {breaker['service']:<22} {breaker['state']:<9} "
                f"opens={breaker['opens']} fastfails={breaker['fastfails']}"
            )
    index = snap.get("index")
    if index:
        lines.append("")
        lines.append("index")
        lines.append(f"  version          {index['current_version']}")
        pins = ", ".join(
            f"v{v}x{n}" for v, n in index["active_pins"].items()
        )
        lines.append(f"  active_pins      {pins or '(none)'}")
        lines.append(f"  compaction_floor {index['compaction_floor']}")
        lines.append(f"  max_segments     {index['max_segment_count']}")
        if "compaction_backlog" in index:
            lines.append(f"  backlog          {index['compaction_backlog']}")
        for replica in index["replicas"]:
            lines.append(
                f"  shard{replica['shard']}/r{replica['replica']}"
                f"@node{replica['node']}  segments={replica['segments']} "
                f"v{replica['latest_version']}"
            )
    ingest = snap.get("ingest")
    if ingest:
        lines.append("")
        lines.append("ingest")
        lines.append(f"  batches          {ingest['batches_applied']}")
        lines.append(f"  documents        {ingest['documents_indexed']}")
        lines.append(f"  compaction_runs  {_fmt(ingest['compaction_runs'])}")
        lines.append(
            f"  merged_docs      {_fmt(ingest['compaction_merged_docs'])}"
        )
    lines.append("")
    lines.append("memos")
    for memo, stats in snap["memos"].items():
        lines.append(
            f"  {memo:<6} hits={_fmt(stats['hits'])} "
            f"misses={_fmt(stats['misses'])} "
            f"evictions={_fmt(stats['evictions'])} "
            f"hit_rate={stats['hit_rate']:.2%}"
        )
    if snap["stage_latency"]:
        lines.append("")
        lines.append("stage latency (p95 bucket bound, exemplar trace)")
        for stage, summary in snap["stage_latency"].items():
            lines.append(
                f"  {stage:<10} count={summary['count']} "
                f"mean={_fmt(summary['mean'])} p95<={_fmt(summary['p95_le'])} "
                f"trace={summary['p95_exemplar_trace']}"
            )
    recovery = snap.get("recovery")
    if recovery:
        lines.append("")
        lines.append("recovery")
        live_rf = ", ".join(
            f"shard{shard}:{live}"
            for shard, live in recovery["live_replication"].items()
        )
        lines.append(f"  live_rf          {live_rf or '(none)'}")
        under = ", ".join(str(s) for s in recovery["under_replicated"])
        lines.append(f"  under_replicated {under or '(none)'}")
        down = ", ".join(str(n) for n in recovery["down_nodes"])
        lines.append(f"  down_nodes       {down or '(none)'}")
        inflight = ", ".join(
            f"shard{shard}@node{host}"
            for shard, host in recovery["inflight_replicas"]
        )
        lines.append(f"  inflight         {inflight or '(none)'}")
        lines.append(
            "  transfers        "
            f"{recovery['transfers']} ({recovery['docs_shipped']} docs)"
        )
        lines.append(f"  settled          {recovery['settled']}")
    wal = snap.get("wal")
    if wal:
        lines.append("")
        lines.append("wal")
        lines.append(f"  depth            {wal['depth']}")
        lines.append(f"  last_lsn         {wal['last_lsn']}")
        lines.append(f"  checkpoint_lsn   {wal['checkpoint_lsn']}")
        unsealed = ", ".join(str(lsn) for lsn in wal["unsealed"])
        lines.append(f"  unsealed         {unsealed or '(none)'}")
    slo = snap.get("slo")
    if slo:
        lines.append("")
        lines.append("slo")
        for status in slo["slos"]:
            rates = ", ".join(
                f"{window}:{rate:.2f}"
                for window, rate in status["burn_rates"].items()
            )
            flag = "FIRING" if status["firing"] else "ok"
            lines.append(
                f"  {status['slo']:<14} {flag:<6} objective={status['objective']:g} "
                f"events={status['events']} bad={status['bad']} burn=[{rates}]"
            )
        for alert in slo["alerts"]:
            lines.append(
                f"  alert {alert['slo']} {alert['state']} at {_fmt(alert['at'])}"
            )
    return "\n".join(lines)
