"""Declarative SLOs with multi-window burn-rate alerting on the sim clock.

An :class:`SLOSpec` states an objective ("99% of router responses are
served", "95% of requests finish within 5.0 sim units", "95% of batches
become queryable within 40.0 sim units of ingest").  Each spec is
tracked as a stream of timestamped good/bad events over sliding
sim-clock windows; *burn rate* is the classic SRE ratio

    burn_rate = observed_bad_fraction / error_budget

so 1.0 means "burning budget exactly as fast as the objective allows"
and 10.0 means "ten times too fast".  An alert fires only when **every**
configured window exceeds its threshold — the long window proves the
problem is sustained, the short window proves it is still happening —
and resolves when any window drops back below.  Every transition is
appended to :attr:`SLOMonitor.alerts`, mirrored into ``slo.*`` metrics,
and recorded in the audit trail (kind :data:`AUDIT_KIND_SLO`), so alert
history rides the same JSONL export stream as spans and decisions.

Everything is driven by the shared :class:`~repro.obs.clock.SimClock`:
no wall clock, no RNG — a scripted breach fires identically on every
run (DET001/DET002 clean).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from . import audit as _audit

#: SLO kinds.
AVAILABILITY = "availability"
LATENCY = "latency"
FRESHNESS = "freshness"
REPLICATION = "replication"

#: Audit-entry kind used for alert transitions.
AUDIT_KIND_SLO = "slo"

#: Alert states.
FIRING = "firing"
RESOLVED = "resolved"


@dataclass(frozen=True)
class BurnWindow:
    """One sliding window and the burn rate that trips it."""

    length: float
    max_burn_rate: float

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("window length must be positive")
        if self.max_burn_rate <= 0:
            raise ValueError("max burn rate must be positive")


#: Default window pair: a long window for "sustained" and a short one
#: for "still happening", both in sim units (page-style thresholds).
DEFAULT_WINDOWS = (
    BurnWindow(length=200.0, max_burn_rate=2.0),
    BurnWindow(length=25.0, max_burn_rate=2.0),
)


@dataclass(frozen=True)
class SLOSpec:
    """A declarative objective over a stream of good/bad events.

    ``objective`` is the good fraction promised (0.99 = 99%); the error
    budget is its complement.  For :data:`LATENCY` and :data:`FRESHNESS`
    kinds, ``threshold`` is the sim-cost ceiling that classifies an
    observation as bad; :data:`AVAILABILITY` ignores it (the caller
    classifies by response status).
    """

    name: str
    kind: str
    objective: float
    threshold: float = 0.0
    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in (AVAILABILITY, LATENCY, FRESHNESS, REPLICATION):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be strictly between 0 and 1")
        if not self.windows:
            raise ValueError("an SLO needs at least one burn window")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class AlertEvent:
    """One alert transition (fired or resolved) for one SLO."""

    slo: str
    state: str
    at: float
    burn_rates: tuple[tuple[float, float], ...]  # (window length, rate)

    def to_record(self) -> dict[str, Any]:
        return {
            "type": "slo_alert",
            "slo": self.slo,
            "state": self.state,
            "at": self.at,
            "burn_rates": [list(pair) for pair in self.burn_rates],
        }


class _WindowState:
    """One window's event deque with running totals.

    Keeping per-window counts incrementally makes every evaluation
    amortised O(evicted events) instead of rescanning the whole window —
    the SLO monitor runs once per drained burst on the serving hot path
    and shares the bench-obs overhead budget with the tracer.
    """

    __slots__ = ("window", "events", "total", "bad")

    def __init__(self, window: BurnWindow):
        self.window = window
        self.events: deque[tuple[float, bool]] = deque()  # (t, bad)
        self.total = 0
        self.bad = 0

    def record(self, t: float, bad: bool) -> None:
        self.events.append((t, bad))
        self.total += 1
        self.bad += bad

    def burn_rate(self, now: float, error_budget: float) -> float:
        """Bad fraction in the window, normalised by the error budget."""
        cutoff = now - self.window.length
        events = self.events
        while events and events[0][0] < cutoff:
            _, was_bad = events.popleft()
            self.total -= 1
            self.bad -= was_bad
        if self.total == 0:
            return 0.0
        return (self.bad / self.total) / error_budget


class _Tracker:
    """Event stream + alert state for one spec."""

    __slots__ = ("spec", "windows", "good", "bad", "firing")

    def __init__(self, spec: SLOSpec):
        self.spec = spec
        self.windows = tuple(_WindowState(w) for w in spec.windows)
        self.good = 0
        self.bad = 0
        self.firing = False

    def record(self, t: float, bad: bool) -> None:
        if bad:
            self.bad += 1
        else:
            self.good += 1
        for state in self.windows:
            state.record(t, bad)

    def evaluate(self, now: float) -> tuple[dict[str, Any], AlertEvent | None]:
        budget = self.spec.error_budget
        rates = tuple(
            (s.window.length, s.burn_rate(now, budget)) for s in self.windows
        )
        breaching = all(
            rate >= w.max_burn_rate
            for (_, rate), w in zip(rates, self.spec.windows)
        )
        event: AlertEvent | None = None
        if breaching and not self.firing:
            self.firing = True
            event = AlertEvent(self.spec.name, FIRING, now, rates)
        elif not breaching and self.firing:
            self.firing = False
            event = AlertEvent(self.spec.name, RESOLVED, now, rates)
        total = self.good + self.bad
        status = {
            "slo": self.spec.name,
            "kind": self.spec.kind,
            "objective": self.spec.objective,
            "threshold": self.spec.threshold,
            "events": total,
            "bad": self.bad,
            "good_fraction": (self.good / total) if total else 1.0,
            "burn_rates": {f"{length:g}": rate for length, rate in rates},
            "firing": self.firing,
        }
        return status, event


def default_serving_slos(
    latency_threshold: float = 5.0,
    freshness_threshold: float = 40.0,
) -> tuple[SLOSpec, ...]:
    """The stock router SLO set: availability, p95 latency, p95 freshness."""
    return (
        SLOSpec(
            name="availability",
            kind=AVAILABILITY,
            objective=0.99,
            description="99% of router responses are served (ok or degraded)",
        ),
        SLOSpec(
            name="latency_p95",
            kind=LATENCY,
            objective=0.95,
            threshold=latency_threshold,
            description=f"95% of requests finish within {latency_threshold:g}",
        ),
        SLOSpec(
            name="freshness_p95",
            kind=FRESHNESS,
            objective=0.95,
            threshold=freshness_threshold,
            description=(
                f"95% of ingest batches queryable within {freshness_threshold:g}"
            ),
        ),
    )


def replication_slo(objective: float = 0.95) -> SLOSpec:
    """Replication-health objective for recovery-enabled clusters.

    Each observation is one shard at one recovery tick; "bad" means the
    shard was under-replicated at that instant.  Kept out of
    :func:`default_serving_slos` so plain serving runs (no restarts, no
    recovery manager) keep their exact report shape — the scenario
    builder adds it via :meth:`SLOMonitor.add_spec` when recovery is on.
    """
    return SLOSpec(
        name="replication_health",
        kind=REPLICATION,
        objective=objective,
        description=(
            f"{objective:.0%} of per-shard observations at full replication"
        ),
    )


class SLOMonitor:
    """Tracks a set of SLO specs against one observability context.

    The router calls :meth:`record_request` per response and the live
    indexer calls :meth:`record_freshness` per absorbed batch; some
    driver (load generator, health command, test) calls
    :meth:`evaluate` at checkpoints to advance the alert state machine.
    """

    #: Response statuses that count against the availability budget.
    BAD_STATUSES = frozenset({"error", "shed", "expired"})

    def __init__(self, obs: Any, specs: tuple[SLOSpec, ...] | None = None):
        self._obs = obs
        self._trackers: dict[str, _Tracker] = {}
        # Per-kind views so the per-response intake path never scans
        # trackers of the wrong kind (it runs once per router response).
        self._by_kind: dict[str, list[_Tracker]] = {
            AVAILABILITY: [], LATENCY: [], FRESHNESS: [], REPLICATION: []
        }
        self.alerts: list[AlertEvent] = []
        for spec in specs if specs is not None else default_serving_slos():
            self.add_spec(spec)

    def add_spec(self, spec: SLOSpec) -> None:
        if spec.name in self._trackers:
            raise ValueError(f"duplicate SLO {spec.name!r}")
        tracker = _Tracker(spec)
        self._trackers[spec.name] = tracker
        self._by_kind[spec.kind].append(tracker)

    @property
    def specs(self) -> tuple[SLOSpec, ...]:
        return tuple(t.spec for t in self._trackers.values())

    # -- event intake -----------------------------------------------------------

    def record_request(self, status: str, latency: float) -> None:
        """Feed one router response into availability + latency SLOs."""
        now = self._obs.clock.now
        bad = status in self.BAD_STATUSES
        for tracker in self._by_kind[AVAILABILITY]:
            tracker.record(now, bad)
        for tracker in self._by_kind[LATENCY]:
            tracker.record(now, latency > tracker.spec.threshold)

    def record_freshness(self, lag: float) -> None:
        """Feed one ingest-to-queryable lag observation."""
        now = self._obs.clock.now
        for tracker in self._by_kind[FRESHNESS]:
            tracker.record(now, lag > tracker.spec.threshold)

    def record_replication(self, healthy: bool) -> None:
        """Feed one per-shard replication-health observation.

        The recovery manager calls this once per shard per tick:
        ``healthy`` means the shard currently has at least the configured
        replication factor's worth of *live* replicas.
        """
        now = self._obs.clock.now
        for tracker in self._by_kind[REPLICATION]:
            tracker.record(now, not healthy)

    # -- evaluation -------------------------------------------------------------

    def evaluate(self) -> list[dict[str, Any]]:
        """Advance every alert state machine; return per-SLO statuses."""
        now = self._obs.clock.now
        metrics = self._obs.metrics
        statuses: list[dict[str, Any]] = []
        for tracker in self._trackers.values():
            status, event = tracker.evaluate(now)
            statuses.append(status)
            metrics.gauge("slo.burning", slo=tracker.spec.name).set(
                1.0 if tracker.firing else 0.0
            )
            shortest = min(tracker.spec.windows, key=lambda w: w.length)
            metrics.gauge("slo.burn_rate", slo=tracker.spec.name).set(
                status["burn_rates"][f"{shortest.length:g}"]
            )
            if event is not None:
                self.alerts.append(event)
                metrics.counter("slo.alerts", state=event.state).inc()
                self._obs.audit.record(
                    _audit.AuditEntry(
                        kind=AUDIT_KIND_SLO,
                        subject=event.slo,
                        decision=event.state,
                        reason="multi-window burn rate",
                        detail=(
                            ("at", event.at),
                            ("burn_rates", [list(p) for p in event.burn_rates]),
                        ),
                    )
                )
        return statuses

    def status_snapshot(self) -> dict[str, Any]:
        """Evaluation results plus alert history, for the health surface."""
        return {
            "slos": self.evaluate(),
            "alerts": [event.to_record() for event in self.alerts],
        }
