"""The pipeline audit trail: *why* each decision was made.

Two decision families are recorded:

* ``spot`` — the disambiguator kept or filtered a subject occurrence
  (which resolution passed/failed, with the scores involved);
* ``sentiment`` — a sentiment context resolved to +/-/0/no-match
  (which pattern matched, which lexicon entries fired, whether negation
  reversed the polarity, or why nothing matched).

Entries are plain records so they serialise straight to JSONL alongside
spans and metrics.  The default everywhere is :data:`NULL_AUDIT`, which
records nothing at zero cost; :class:`~repro.core.miner.SentimentMiner`
exposes the entries generated for a run on ``MiningResult.audit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

#: Entry kinds.
SPOT = "spot"
SENTIMENT = "sentiment"

#: Spot decisions.
KEPT = "kept"
FILTERED = "filtered"

#: Sentiment decision reasons.
PATTERN_MATCH = "pattern-match"
CONTEXT_WINDOW = "context-window"
NO_MATCH = "no-match"


@dataclass(frozen=True)
class AuditEntry:
    """One recorded decision."""

    kind: str  # SPOT | SENTIMENT
    subject: str
    decision: str  # kept/filtered, or the polarity symbol +/-/0
    reason: str  # global-pass, combined-fail, pattern-match, no-match, ...
    document_id: str = ""
    sentence_index: int = -1
    pattern: str = ""
    predicate: str = ""
    lexicon_entries: tuple[str, ...] = ()
    negated: bool = False
    detail: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.detail:
            if name == key:
                return value
        return default

    def to_record(self) -> dict[str, Any]:
        return {
            "type": "audit",
            "kind": self.kind,
            "subject": self.subject,
            "decision": self.decision,
            "reason": self.reason,
            "document_id": self.document_id,
            "sentence_index": self.sentence_index,
            "pattern": self.pattern,
            "predicate": self.predicate,
            "lexicon_entries": list(self.lexicon_entries),
            "negated": self.negated,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "AuditEntry":
        return cls(
            kind=record["kind"],
            subject=record.get("subject", ""),
            decision=record.get("decision", ""),
            reason=record.get("reason", ""),
            document_id=record.get("document_id", ""),
            sentence_index=record.get("sentence_index", -1),
            pattern=record.get("pattern", ""),
            predicate=record.get("predicate", ""),
            lexicon_entries=tuple(record.get("lexicon_entries", ())),
            negated=record.get("negated", False),
            detail=tuple(sorted(record.get("detail", {}).items())),
        )


class AuditTrail:
    """Append-only list of :class:`AuditEntry` with filtered views."""

    enabled = True

    def __init__(self) -> None:
        self._entries: list[AuditEntry] = []

    # -- recording --------------------------------------------------------------

    def record(self, entry: AuditEntry) -> None:
        self._entries.append(entry)

    def record_spot(
        self,
        subject: str,
        decision: str,
        reason: str,
        *,
        document_id: str = "",
        sentence_index: int = -1,
        **detail: Any,
    ) -> None:
        self._entries.append(
            AuditEntry(
                kind=SPOT,
                subject=subject,
                decision=decision,
                reason=reason,
                document_id=document_id,
                sentence_index=sentence_index,
                detail=tuple(sorted(detail.items())),
            )
        )

    def record_sentiment(
        self,
        subject: str,
        polarity: str,
        reason: str,
        *,
        document_id: str = "",
        sentence_index: int = -1,
        pattern: str = "",
        predicate: str = "",
        lexicon_entries: tuple[str, ...] = (),
        negated: bool = False,
        **detail: Any,
    ) -> None:
        self._entries.append(
            AuditEntry(
                kind=SENTIMENT,
                subject=subject,
                decision=polarity,
                reason=reason,
                document_id=document_id,
                sentence_index=sentence_index,
                pattern=pattern,
                predicate=predicate,
                lexicon_entries=lexicon_entries,
                negated=negated,
                detail=tuple(sorted(detail.items())),
            )
        )

    # -- bookmarks (per-document slices) ---------------------------------------

    def mark(self) -> int:
        """Position bookmark; pair with :meth:`since`."""
        return len(self._entries)

    def since(self, mark: int) -> list[AuditEntry]:
        return list(self._entries[mark:])

    # -- views ------------------------------------------------------------------

    @property
    def entries(self) -> list[AuditEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[AuditEntry]:
        return iter(self._entries)

    def spots(self) -> list[AuditEntry]:
        return [e for e in self._entries if e.kind == SPOT]

    def sentiments(self) -> list[AuditEntry]:
        return [e for e in self._entries if e.kind == SENTIMENT]

    def for_subject(self, subject: str) -> list[AuditEntry]:
        return [e for e in self._entries if e.subject == subject]

    def merge(self, other: "AuditTrail") -> None:
        self._entries.extend(other._entries)

    def to_records(self) -> list[dict[str, Any]]:
        return [e.to_record() for e in self._entries]


class NullAuditTrail:
    """Zero-cost default: records nothing, reports nothing."""

    enabled = False

    def record(self, entry: AuditEntry) -> None:
        pass

    def record_spot(self, *args: Any, **kwargs: Any) -> None:
        pass

    def record_sentiment(self, *args: Any, **kwargs: Any) -> None:
        pass

    def mark(self) -> int:
        return 0

    def since(self, mark: int) -> list[AuditEntry]:
        return []

    @property
    def entries(self) -> list[AuditEntry]:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[AuditEntry]:
        return iter(())

    def spots(self) -> list[AuditEntry]:
        return []

    def sentiments(self) -> list[AuditEntry]:
        return []

    def for_subject(self, subject: str) -> list[AuditEntry]:
        return []

    def merge(self, other: Any) -> None:
        pass

    def to_records(self) -> list[dict[str, Any]]:
        return []


NULL_AUDIT = NullAuditTrail()
