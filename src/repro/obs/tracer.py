"""Hierarchical spans over the simulated clock.

A :class:`Tracer` produces a tree of :class:`Span` objects: a root span
per document (or per cluster run), child spans per pipeline stage and
per Vinci request.  Timestamps come from a :class:`~repro.obs.clock.SimClock`
so durations are *simulated cost*, not wall time, and traces are
deterministic.

Instrumentation sites write ``with tracer.span("stage", key=value):``.
The default tracer everywhere is :data:`NULL_TRACER`, whose ``span()``
returns one shared inert object — no allocation, no bookkeeping — which
is what makes tracing zero-cost when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from .clock import SimClock

#: Span status values.
OK = "ok"
ERROR = "error"


@dataclass
class Span:
    """One timed operation; ``parent_id`` links spans into a tree."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    status: str = OK
    error: str = ""
    attributes: dict[str, Any] = field(default_factory=dict)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def to_record(self) -> dict[str, Any]:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Span":
        return cls(
            name=record["name"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            start=record.get("start", 0.0),
            end=record.get("end"),
            status=record.get("status", OK),
            error=record.get("error", ""),
            attributes=dict(record.get("attributes", {})),
        )


class _SpanContext:
    """Context manager binding one live span to its tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None:
            self.span.status = ERROR
            self.span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._finish(self.span)
        return False


class Tracer:
    """Collects spans into a forest ordered by start time."""

    enabled = True

    def __init__(self, clock: SimClock | None = None):
        self.clock = clock or SimClock()
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # -- span lifecycle ---------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a child of the current span (or a new root)."""
        self.clock.tick()
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=self.clock.now,
            attributes=attributes,
        )
        self._next_id += 1
        self._spans.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self.clock.now
        # Pop through abandoned children so an exception cannot leave the
        # stack pointing at a finished span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- introspection ----------------------------------------------------------

    def spans(self) -> list[Span]:
        """Every span started so far, in start order."""
        return list(self._spans)

    def roots(self) -> list[Span]:
        return [s for s in self._spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        return [s for s in self._spans if s.name == name]

    def clear(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self._next_id = 1


class _NullSpan:
    """Shared inert span: accepts the Span surface, records nothing."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    start = 0.0
    end = 0.0
    status = OK
    error = ""
    duration = 0.0
    finished = True

    @property
    def attributes(self) -> dict[str, Any]:
        return {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: every ``span()`` is the same inert object."""

    enabled = False
    clock = SimClock()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    @property
    def current(self) -> None:
        return None

    def spans(self) -> list[Span]:
        return []

    def roots(self) -> list[Span]:
        return []

    def find(self, name: str) -> list[Span]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()


def walk(spans: list[Span]) -> Iterator[tuple[Span, int]]:
    """Depth-first (span, depth) traversal of a span forest.

    Children are visited in start order; orphans (parent missing from the
    list, e.g. a truncated dump) are promoted to roots rather than lost.
    """
    by_parent: dict[int | None, list[Span]] = {}
    ids = {s.span_id for s in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)

    def visit(parent: int | None, depth: int) -> Iterator[tuple[Span, int]]:
        for span in by_parent.get(parent, ()):
            yield span, depth
            yield from visit(span.span_id, depth + 1)

    yield from visit(None, 0)
