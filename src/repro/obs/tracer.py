"""Hierarchical spans over the simulated clock.

A :class:`Tracer` produces a tree of :class:`Span` objects: a root span
per document (or per cluster run), child spans per pipeline stage and
per Vinci request.  Timestamps come from a :class:`~repro.obs.clock.SimClock`
so durations are *simulated cost*, not wall time, and traces are
deterministic.

Instrumentation sites write ``with tracer.span("stage", key=value):``.
The default tracer everywhere is :data:`NULL_TRACER`, whose ``span()``
returns one shared inert object — no allocation, no bookkeeping — which
is what makes tracing zero-cost when disabled.
"""

from __future__ import annotations

from typing import Any, Iterator

from .clock import TICK, SimClock
from .context import ROOT, TraceContext

#: Span status values.
OK = "ok"
ERROR = "error"


class Span:
    """One timed operation; ``parent_id`` links spans into a tree.

    A live span is its own context manager: ``__exit__`` records the
    error status (if any) and hands the span back to its tracer.  This
    is a deliberately plain ``__slots__`` class — span creation is the
    tracer's hot path, and the enabled-mode overhead budget
    (``benchmarks/bench_obs_overhead.py``) leaves no room for dataclass
    machinery or a separate context-manager allocation per span.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "status",
        "error",
        "attributes",
        "trace_id",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        end: float | None = None,
        status: str = OK,
        error: str = "",
        attributes: dict[str, Any] | None = None,
        trace_id: int = 0,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.status = status
        self.error = error
        self.attributes = {} if attributes is None else attributes
        self.trace_id = trace_id
        self._tracer: "Tracer" | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, span_id={self.span_id}, "
            f"trace_id={self.trace_id}, parent_id={self.parent_id})"
        )

    def _key(self) -> tuple:
        return (
            self.name,
            self.span_id,
            self.parent_id,
            self.start,
            self.end,
            self.status,
            self.error,
            self.attributes,
            self.trace_id,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return self._key() == other._key()

    # Value-equal like the dataclass it replaced, hence unhashable.
    __hash__ = None  # type: ignore[assignment]

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None:
            self.status = ERROR
            self.error = f"{exc_type.__name__}: {exc}"
        tracer = self._tracer
        self.end = tracer.clock._now
        # Pop through abandoned children so an exception cannot leave
        # the stack pointing at a finished span.
        stack = tracer._stack
        while stack:
            if stack.pop() is self:
                break
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def context(self) -> TraceContext:
        """This span's position as a propagatable :class:`TraceContext`."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_record(self) -> dict[str, Any]:
        return {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Span":
        return cls(
            name=record["name"],
            span_id=record["span_id"],
            trace_id=record.get("trace_id", 0),
            parent_id=record.get("parent_id"),
            start=record.get("start", 0.0),
            end=record.get("end"),
            status=record.get("status", OK),
            error=record.get("error", ""),
            attributes=dict(record.get("attributes", {})),
        )


class Tracer:
    """Collects spans into a forest ordered by start time."""

    enabled = True

    def __init__(self, clock: SimClock | None = None):
        self.clock = clock or SimClock()
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self._next_trace_id = 1

    # -- span lifecycle ---------------------------------------------------------

    def span(
        self,
        name: str,
        parent: TraceContext | None = None,
        **attributes: Any,
    ) -> Span:
        """Open a child of the current span (or a new root).

        ``parent`` overrides stack-based nesting: an explicit
        :class:`TraceContext` (extracted from a bus payload) parents the
        span into the remote caller's trace; the :data:`ROOT` sentinel
        forces a fresh root span in a brand-new trace regardless of what
        is on the stack.  With ``parent=None`` (the default) the span
        nests under the current stack top, inheriting its trace_id, or
        starts a new trace when the stack is empty.
        """
        stack = self._stack
        if parent is ROOT:
            parent_id: int | None = None
            trace_id = self._next_trace_id
            self._next_trace_id += 1
        elif parent is not None:
            parent_id = parent.span_id
            trace_id = parent.trace_id
        elif stack:
            top = stack[-1]
            parent_id = top.span_id
            trace_id = top.trace_id
        else:
            parent_id = None
            trace_id = self._next_trace_id
            self._next_trace_id += 1
        # Hot path: build the span by direct slot assignment rather than
        # through __init__ — this runs for every span of every traced
        # request and is what the bench-obs overhead gate measures.
        clock = self.clock
        clock._now = start = clock._now + TICK
        span = Span.__new__(Span)
        span.name = name
        span.span_id = self._next_id
        span.parent_id = parent_id
        span.start = start
        span.end = None
        span.status = OK
        span.error = ""
        span.attributes = attributes
        span.trace_id = trace_id
        span._tracer = self
        self._next_id += 1
        self._spans.append(span)
        stack.append(span)
        return span

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def current_context(self) -> TraceContext | None:
        """The stack top as a propagatable context (``None`` outside spans)."""
        top = self._stack[-1] if self._stack else None
        return top.context if top is not None else None

    # -- introspection ----------------------------------------------------------

    def spans(self) -> list[Span]:
        """Every span started so far, in start order."""
        return list(self._spans)

    def roots(self) -> list[Span]:
        return [s for s in self._spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        return [s for s in self._spans if s.name == name]

    def clear(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self._next_id = 1
        self._next_trace_id = 1


class _NullSpan:
    """Shared inert span: accepts the Span surface, records nothing."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    trace_id = 0
    start = 0.0
    end = 0.0
    status = OK
    error = ""
    duration = 0.0
    finished = True
    context = ROOT

    @property
    def attributes(self) -> dict[str, Any]:
        return {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: every ``span()`` is the same inert object."""

    enabled = False
    clock = SimClock()

    def span(
        self,
        name: str,
        parent: TraceContext | None = None,
        **attributes: Any,
    ) -> _NullSpan:
        return NULL_SPAN

    @property
    def current(self) -> None:
        return None

    @property
    def current_context(self) -> None:
        return None

    def spans(self) -> list[Span]:
        return []

    def roots(self) -> list[Span]:
        return []

    def find(self, name: str) -> list[Span]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()


def walk(spans: list[Span]) -> Iterator[tuple[Span, int]]:
    """Depth-first (span, depth) traversal of a span forest.

    Children are visited in start order; orphans (parent missing from the
    list, e.g. a truncated dump) are promoted to roots rather than lost.
    """
    by_parent: dict[int | None, list[Span]] = {}
    ids = {s.span_id for s in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)

    def visit(parent: int | None, depth: int) -> Iterator[tuple[Span, int]]:
        for span in by_parent.get(parent, ()):
            yield span, depth
            yield from visit(span.span_id, depth + 1)

    yield from visit(None, 0)
