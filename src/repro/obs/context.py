"""Deterministic trace-context propagation across Vinci envelopes.

A :class:`TraceContext` is the wire form of "where in which trace am I":
the ``trace_id`` of the request's trace and the ``span_id`` of the span
that should become the parent on the far side of a bus hop.  Both ids
come from seeded per-tracer counters (no wall clock, no process RNG), so
the same scenario seed always produces the same ids — traces are as
replayable as the runs they describe.

Payloads carry the context under :data:`TRACE_KEY`; :func:`with_trace`
injects it and :func:`extract_context` recovers it.  Handlers that open
spans pass the extracted context as ``tracer.span(..., parent=ctx)`` so
the remote span joins the caller's trace instead of starting a new one.

:data:`ROOT` is a sentinel "parent": ``tracer.span(..., parent=ROOT)``
forces a fresh root span with a new trace_id even when other spans are
open — used by the serving router (one trace per request) and by
background work (ingest increments, seals, compactions) that must not
inherit whatever trace happens to be on the stack.
"""

from __future__ import annotations

from typing import Any, Mapping, NamedTuple

#: Payload key under which the wire form of a TraceContext travels.
TRACE_KEY = "trace"


class TraceContext(NamedTuple):
    """Immutable (trace_id, span_id) pair identifying a position in a trace.

    A NamedTuple rather than a frozen dataclass: one is built per bus
    hop and per ``current_context`` read on the serving hot path, and
    tuple construction is several times cheaper than frozen-dataclass
    ``object.__setattr__`` initialisation.
    """

    trace_id: int
    span_id: int

    def to_wire(self) -> dict[str, int]:
        """The JSON-safe payload form stored under :data:`TRACE_KEY`."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, record: Any) -> "TraceContext | None":
        """Parse a wire form; ``None`` for anything malformed or empty."""
        if type(record) is not dict and not isinstance(record, Mapping):
            return None
        trace_id = record.get("trace_id")
        span_id = record.get("span_id")
        if type(trace_id) is not int or type(span_id) is not int:
            if not isinstance(trace_id, int) or not isinstance(span_id, int):
                return None
        if trace_id <= 0 or span_id <= 0:
            return None
        return cls(trace_id=trace_id, span_id=span_id)


#: Sentinel parent: force a new root span in a brand-new trace.
ROOT = TraceContext(trace_id=0, span_id=0)


def with_trace(
    payload: Mapping[str, Any], ctx: TraceContext | None
) -> dict[str, Any]:
    """Return a copy of *payload* carrying *ctx* under :data:`TRACE_KEY`.

    A ``None`` or :data:`ROOT` context yields a plain copy without the
    key — callers can thread ``tracer.current_context`` unconditionally
    and disabled tracing (NullTracer) degrades to an untraced payload.
    """
    out = dict(payload)
    if ctx is None or ctx is ROOT or ctx.trace_id <= 0:
        out.pop(TRACE_KEY, None)
        return out
    out[TRACE_KEY] = ctx.to_wire()
    return out


def extract_context(payload: Any) -> TraceContext | None:
    """Recover the TraceContext from a bus payload, if one was threaded."""
    # Payloads are plain dicts on the hot path; dodge the ABC isinstance.
    if type(payload) is not dict and not isinstance(payload, Mapping):
        return None
    record = payload.get(TRACE_KEY)
    if record is None:
        return None
    return TraceContext.from_wire(record)
