"""Exporters: JSONL dumps and the pretty console span tree.

One JSONL file carries the whole observability picture of a run — span
records, metric series, and audit entries interleaved, one JSON object
per line with a ``type`` discriminator — so ``repro trace run.jsonl``
can re-render everything offline and benchmarks can parse it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any, Iterable

from .audit import AuditEntry
from .metrics import MetricsRegistry, format_series
from .tracer import Span, walk


@dataclass
class TraceDump:
    """A parsed JSONL observability dump."""

    spans: list[Span] = field(default_factory=list)
    metrics: list[dict[str, Any]] = field(default_factory=list)
    audit: list[AuditEntry] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.spans or self.metrics or self.audit)


def write_records(stream: IO[str], records: Iterable[dict[str, Any]]) -> int:
    """Write records as JSONL; returns the number of lines written."""
    count = 0
    for record in records:
        stream.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        count += 1
    return count


def dump_records(
    spans: Iterable[Span] = (),
    metrics: MetricsRegistry | None = None,
    audit: Iterable[AuditEntry] = (),
) -> list[dict[str, Any]]:
    """Assemble the JSONL record stream for one run."""
    records: list[dict[str, Any]] = [s.to_record() for s in spans]
    if metrics is not None:
        records.extend(metrics.to_records())
    records.extend(e.to_record() for e in audit)
    return records


def write_trace(
    path: str,
    spans: Iterable[Span] = (),
    metrics: MetricsRegistry | None = None,
    audit: Iterable[AuditEntry] = (),
) -> int:
    """Write one run's spans/metrics/audit to *path*; returns line count."""
    with open(path, "w", encoding="utf-8") as stream:
        return write_records(stream, dump_records(spans, metrics, audit))


def read_trace(path: str) -> TraceDump:
    """Parse a JSONL dump back into spans, metric records, audit entries."""
    dump = TraceDump()
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "span":
                dump.spans.append(Span.from_record(record))
            elif kind == "metric":
                dump.metrics.append(record)
            elif kind == "audit":
                dump.audit.append(AuditEntry.from_record(record))
    return dump


# -- console rendering ------------------------------------------------------------


def _format_attrs(attributes: dict[str, Any]) -> str:
    if not attributes:
        return ""
    inner = " ".join(f"{k}={v}" for k, v in attributes.items())
    return f"  [{inner}]"


def render_span_tree(spans: list[Span]) -> str:
    """Indented tree of a span forest, with simulated durations."""
    if not spans:
        return "(no spans)"
    lines: list[str] = []
    entries = list(walk(spans))
    for position, (span, depth) in enumerate(entries):
        # Box-drawing guides: is this span the last child at its depth?
        later_depths = [d for _, d in entries[position + 1 :]]
        has_later_sibling = False
        for d in later_depths:
            if d < depth:
                break
            if d == depth:
                has_later_sibling = True
                break
        if depth == 0:
            prefix = ""
        else:
            prefix = "   " * (depth - 1) + ("├─ " if has_later_sibling else "└─ ")
        status = "" if span.status == "ok" else f" !{span.status}"
        duration = f" ({span.duration:.3f}u)" if span.finished else " (open)"
        lines.append(f"{prefix}{span.name}{duration}{status}{_format_attrs(span.attributes)}")
    return "\n".join(lines)


def render_metric_records(records: list[dict[str, Any]]) -> str:
    """One line per metric series, matching ``MetricsRegistry.render``."""
    lines = []
    for record in records:
        labels = tuple(sorted((k, str(v)) for k, v in record.get("labels", {}).items()))
        key = format_series(record["name"], labels)
        if record.get("kind") == "histogram":
            lines.append(f"{key}  count={record['count']:g} sum={record['sum']:g}")
        else:
            lines.append(f"{key}  {record['value']:g}")
    return "\n".join(lines)


def render_audit(entries: list[AuditEntry], limit: int | None = None) -> str:
    """Compact per-decision listing of an audit trail."""
    shown = entries if limit is None else entries[:limit]
    lines = []
    for entry in shown:
        bits = [f"{entry.kind}:{entry.subject}", f"-> {entry.decision}", f"({entry.reason})"]
        if entry.pattern:
            bits.append(f"pattern[{entry.pattern}]")
        if entry.lexicon_entries:
            bits.append("words[" + ", ".join(entry.lexicon_entries) + "]")
        if entry.negated:
            bits.append("negated")
        if entry.document_id:
            bits.append(f"doc={entry.document_id}")
        lines.append(" ".join(bits))
    if limit is not None and len(entries) > limit:
        lines.append(f"... {len(entries) - limit} more")
    return "\n".join(lines) if lines else "(no audit entries)"


def render_dump(dump: TraceDump) -> str:
    """Full console rendering of a parsed JSONL dump."""
    sections = []
    if dump.spans:
        sections.append(
            f"spans ({len(dump.spans)}):\n{render_span_tree(dump.spans)}"
        )
    if dump.audit:
        sections.append(f"audit ({len(dump.audit)}):\n{render_audit(dump.audit, limit=40)}")
    if dump.metrics:
        sections.append(
            f"metrics ({len(dump.metrics)}):\n{render_metric_records(dump.metrics)}"
        )
    return "\n\n".join(sections) if sections else "(empty trace)"
