"""Unified observability: spans, metrics, and the decision audit trail.

Everything instrumented in the system takes one :class:`Obs` handle
bundling four pieces that share a simulated clock:

* ``tracer``  — hierarchical :class:`~repro.obs.tracer.Span` trees
  (no-op by default; see :func:`Obs.enabled`);
* ``metrics`` — the :class:`~repro.obs.metrics.MetricsRegistry` every
  counter in the system reports into (always live: the legacy stats
  objects are views over it);
* ``audit``   — the :class:`~repro.obs.audit.AuditTrail` of keep/filter
  and polarity decisions (no-op by default);
* ``clock``   — the :class:`~repro.obs.clock.SimClock` timestamps come
  from, advanced by instrumented components as they charge simulated
  cost.

``Obs.default()`` is zero-cost on the trace/audit side: tracing wraps
become a single method call returning a shared inert object.
``Obs.enabled()`` turns everything on.
"""

from __future__ import annotations

from .audit import (
    NULL_AUDIT,
    AuditEntry,
    AuditTrail,
    NullAuditTrail,
)
from .clock import SimClock
from .context import (
    ROOT,
    TRACE_KEY,
    TraceContext,
    extract_context,
    with_trace,
)
from .export import (
    TraceDump,
    dump_records,
    read_trace,
    render_audit,
    render_dump,
    render_metric_records,
    render_span_tree,
    write_trace,
)
from .metrics import (
    DEFAULT_BUCKETS,
    METRIC_NAME_RE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_series,
    validate_metric_name,
)
from .health import health_snapshot, render_health
from .slo import (
    AlertEvent,
    BurnWindow,
    SLOMonitor,
    SLOSpec,
    default_serving_slos,
    replication_slo,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, walk


class Obs:
    """One run's observability context: tracer + metrics + audit + clock."""

    __slots__ = ("clock", "tracer", "metrics", "audit")

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
        audit: AuditTrail | NullAuditTrail | None = None,
        clock: SimClock | None = None,
    ):
        self.clock = clock if clock is not None else SimClock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.audit = audit if audit is not None else NULL_AUDIT

    @classmethod
    def default(cls) -> "Obs":
        """Metrics live, tracing and audit disabled (the zero-cost mode)."""
        return cls()

    @classmethod
    def enabled(cls) -> "Obs":
        """Everything on, sharing one simulated clock."""
        clock = SimClock()
        return cls(
            tracer=Tracer(clock),
            metrics=MetricsRegistry(),
            audit=AuditTrail(),
            clock=clock,
        )

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    @property
    def auditing(self) -> bool:
        return self.audit.enabled

    def records(self) -> list[dict]:
        """The full JSONL record stream for this context."""
        return dump_records(self.tracer.spans(), self.metrics, self.audit.entries)

    def write(self, path: str) -> int:
        """Dump spans + metrics + audit to a JSONL file."""
        return write_trace(
            path, self.tracer.spans(), self.metrics, self.audit.entries
        )


__all__ = [
    "AlertEvent",
    "AuditEntry",
    "AuditTrail",
    "BurnWindow",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "NULL_AUDIT",
    "NULL_TRACER",
    "NullAuditTrail",
    "NullTracer",
    "Obs",
    "ROOT",
    "SLOMonitor",
    "SLOSpec",
    "SimClock",
    "Span",
    "TRACE_KEY",
    "TraceContext",
    "TraceDump",
    "Tracer",
    "default_serving_slos",
    "dump_records",
    "extract_context",
    "format_series",
    "health_snapshot",
    "read_trace",
    "render_audit",
    "render_dump",
    "render_health",
    "render_metric_records",
    "render_span_tree",
    "replication_slo",
    "validate_metric_name",
    "walk",
    "with_trace",
    "write_trace",
]
