"""The metrics registry: counters, gauges, and fixed-bucket histograms.

One registry is the single sink for every counter the system keeps.
The legacy stats objects (``VinciBus.stats()``, ``RetryStats``,
``MiningStats``, ``ClusterRunReport``) are *views* over — or mirrors
into — a registry, so ``repro ... --metrics`` can print one unified
table instead of four ad-hoc reports.

Metric identity is a name plus a sorted label set, rendered
Prometheus-style as ``name{label=value,...}``.  Everything is plain
dicts and floats — no dependencies, cheap enough to leave enabled
always (tracing, by contrast, is opt-in; see :mod:`repro.obs.tracer`).
"""

from __future__ import annotations

import re
from typing import Iterator

LabelKey = tuple[tuple[str, str], ...]

#: Default histogram buckets, tuned for simulated-cost magnitudes.
DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0)

#: Canonical metric-name shape: lowercase dot-separated segments, each
#: starting with a letter (``vinci.retry_backoff_cost``).  The registry
#: rejects anything else at creation time, and the ``repro lint``
#: OBS002 rule enforces the same regex statically on every literal name
#: in the source tree.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")


def validate_metric_name(name: str) -> str:
    """Return *name* unchanged, or raise ``ValueError`` if ill-formed."""
    if not METRIC_NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: names must match {METRIC_NAME_RE.pattern}"
        )
    return name


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: LabelKey) -> str:
    """Canonical ``name{k=v,...}`` rendering of one metric series."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically-increasing count (``set`` exists for view adapters)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def set(self, value: float) -> None:
        """Absolute update — used by view classes emulating ``+=``."""
        self.value = float(value)


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram (cumulative counts, like Prometheus).

    Each bucket keeps one *exemplar*: the trace_id of the most recent
    observation that landed in it (0 when none, or when the caller
    traced nothing).  That links a slow percentile to one concrete
    trace in the JSONL dump without storing per-observation data.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "exemplars")
    kind = "histogram"

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self.exemplars = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float, trace_id: int = 0) -> None:
        self.count += 1
        self.sum += value
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        if trace_id:
            self.exemplars[index] = trace_id

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile_bound(self, q: float) -> float:
        """Smallest bucket upper bound covering quantile *q* (inf if tail)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for bound, bucket in zip(self.buckets, self.bucket_counts):
            cumulative += bucket
            if cumulative >= target:
                return bound
        return float("inf")

    def exemplar_for_quantile(self, q: float) -> int:
        """Trace id exemplar of the bucket holding quantile *q* (0 if none)."""
        if self.count == 0:
            return 0
        target = q * self.count
        cumulative = 0
        for i, bucket in enumerate(self.bucket_counts):
            cumulative += bucket
            if cumulative >= target:
                return self.exemplars[i]
        return self.exemplars[-1]

    def snapshot(self) -> dict[str, float]:
        out: dict[str, float] = {"count": self.count, "sum": self.sum}
        cumulative = 0
        for bound, bucket in zip(self.buckets, self.bucket_counts):
            cumulative += bucket
            out[f"le_{bound:g}"] = cumulative
        out["le_inf"] = self.count
        return out


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Named, labelled instruments created on first use."""

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelKey], Instrument] = {}

    # -- instrument access ------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(name, _label_key(labels), Counter)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(name, _label_key(labels), Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels: object
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            validate_metric_name(name)
            instrument = Histogram(buckets)
            self._instruments[key] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    def _get(self, name: str, key: LabelKey, cls: type) -> Instrument:
        instrument = self._instruments.get((name, key))
        if instrument is None:
            validate_metric_name(name)
            instrument = cls()
            self._instruments[(name, key)] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def series(self, name: str) -> Iterator[tuple[LabelKey, Instrument]]:
        """All label sets registered under *name*."""
        for (metric, labels), instrument in sorted(self._instruments.items()):
            if metric == name:
                yield labels, instrument

    def value(self, name: str, **labels: object) -> float:
        """Current value of a counter/gauge series (0.0 when absent)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; use series()")
        return instrument.value

    def snapshot(self) -> dict[str, float | dict[str, float]]:
        """Flat ``series-name -> value`` map (histograms nest their own)."""
        out: dict[str, float | dict[str, float]] = {}
        for (name, labels), instrument in sorted(self._instruments.items()):
            key = format_series(name, labels)
            if isinstance(instrument, Histogram):
                out[key] = instrument.snapshot()
            else:
                out[key] = instrument.value
        return out

    def to_records(self) -> list[dict[str, object]]:
        """JSONL-ready records, one per series."""
        records: list[dict[str, object]] = []
        for (name, labels), instrument in sorted(self._instruments.items()):
            record: dict[str, object] = {
                "type": "metric",
                "name": name,
                "kind": instrument.kind,
                "labels": dict(labels),
            }
            if isinstance(instrument, Histogram):
                record["count"] = instrument.count
                record["sum"] = instrument.sum
                record["buckets"] = list(instrument.buckets)
                record["bucket_counts"] = list(instrument.bucket_counts)
                if any(instrument.exemplars):
                    record["exemplars"] = list(instrument.exemplars)
            else:
                record["value"] = instrument.value
            records.append(record)
        return records

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s series into this registry (sums counts)."""
        for (name, labels), instrument in other._instruments.items():
            if isinstance(instrument, Counter):
                self._get(name, labels, Counter).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                self._get(name, labels, Gauge).set(instrument.value)
            else:
                mine = self._instruments.get((name, labels))
                if mine is None:
                    mine = Histogram(instrument.buckets)
                    self._instruments[(name, labels)] = mine
                if not isinstance(mine, Histogram) or mine.buckets != instrument.buckets:
                    raise TypeError(f"histogram {name!r} bucket mismatch in merge")
                mine.count += instrument.count
                mine.sum += instrument.sum
                for i, c in enumerate(instrument.bucket_counts):
                    mine.bucket_counts[i] += c
                    if instrument.exemplars[i]:
                        mine.exemplars[i] = instrument.exemplars[i]

    def render(self) -> str:
        """Human-readable metric dump, one series per line."""
        lines = []
        for key, value in self.snapshot().items():
            if isinstance(value, dict):
                lines.append(
                    f"{key}  count={value['count']:g} sum={value['sum']:g}"
                )
            else:
                lines.append(f"{key}  {value:g}")
        return "\n".join(lines)
