"""The sentiment miner: end-to-end orchestration of both operational modes.

Mode A — *predefined subjects* (paper Fig. 2): spotter → disambiguator →
sentiment-context formation → sentiment analyzer.

Mode B — *no predefined subjects* (paper Fig. 3): named-entity spotter →
sentiment-bearing sentence filter → analyzer; results feed the sentiment
index for query-time lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..nlp.sentences import SentenceSplitter
from ..nlp.tokenizer import Tokenizer
from .analyzer import SentimentAnalyzer
from .context import ContextBuilder, ContextWindowRule
from .disambiguation import Disambiguator
from .model import Polarity, SentimentJudgment, Spot, Subject
from .spotting import NamedEntitySpotter, SubjectSpotter


@dataclass
class MiningStats:
    """Counters describing one mining run."""

    documents: int = 0
    sentences: int = 0
    spots_found: int = 0
    spots_on_topic: int = 0
    judgments_polar: int = 0
    judgments_neutral: int = 0

    def merge(self, other: "MiningStats") -> None:
        self.documents += other.documents
        self.sentences += other.sentences
        self.spots_found += other.spots_found
        self.spots_on_topic += other.spots_on_topic
        self.judgments_polar += other.judgments_polar
        self.judgments_neutral += other.judgments_neutral


@dataclass
class MiningResult:
    """Judgments plus run statistics."""

    judgments: list[SentimentJudgment] = field(default_factory=list)
    stats: MiningStats = field(default_factory=MiningStats)

    def polar_judgments(self) -> list[SentimentJudgment]:
        return [j for j in self.judgments if j.polarity.is_polar]

    def by_subject(self) -> dict[str, list[SentimentJudgment]]:
        out: dict[str, list[SentimentJudgment]] = {}
        for judgment in self.judgments:
            out.setdefault(judgment.subject_name, []).append(judgment)
        return out


class SentimentMiner:
    """Entity-level sentiment miner with two operational modes."""

    def __init__(
        self,
        subjects: list[Subject] | None = None,
        analyzer: SentimentAnalyzer | None = None,
        disambiguator: Disambiguator | None = None,
        context_rule: ContextWindowRule | None = None,
    ):
        self._subjects = list(subjects or [])
        self._analyzer = analyzer or SentimentAnalyzer()
        self._disambiguator = disambiguator
        self._context_builder = ContextBuilder(context_rule)
        self._spotter = SubjectSpotter(self._subjects) if self._subjects else None
        self._ne_spotter = NamedEntitySpotter()
        self._tokenizer = Tokenizer()
        self._splitter = SentenceSplitter(self._tokenizer)

    @property
    def analyzer(self) -> SentimentAnalyzer:
        return self._analyzer

    @property
    def subjects(self) -> list[Subject]:
        return list(self._subjects)

    # -- mode A: predefined subject set -------------------------------------------

    def mine_document(self, text: str, document_id: str = "") -> MiningResult:
        """Run the Fig. 2 pipeline on one document."""
        if self._spotter is None:
            raise ValueError("mode A requires a predefined subject list")
        result = MiningResult()
        result.stats.documents = 1
        sentences = self._splitter.split_text(text)
        result.stats.sentences = len(sentences)
        spots = self._spotter.spot_document(sentences, document_id)
        result.stats.spots_found = len(spots)
        if self._disambiguator is not None:
            spots = self._disambiguator.disambiguate(sentences, spots).on_topic
        result.stats.spots_on_topic = len(spots)

        spots_by_sentence: dict[int, list[Spot]] = {}
        for spot in spots:
            spots_by_sentence.setdefault(spot.sentence_index, []).append(spot)
        for index, sentence_spots in sorted(spots_by_sentence.items()):
            sentence = sentences[index]
            tagged = self._analyzer.tag(sentence)
            judgments = self._analyzer.judge_spots(tagged, sentence_spots)
            judgments = self._widen_with_context(sentences, index, judgments)
            self._record(result, judgments)
        return result

    def _widen_with_context(
        self,
        sentences: list,
        index: int,
        judgments: list[SentimentJudgment],
    ) -> list[SentimentJudgment]:
        """Context-window attribution for anaphora.

        When the window rule includes neighbouring sentences, a spot left
        NEUTRAL by its own sentence inherits a polarity assigned to a bare
        pronoun subject in a window sentence ("I tested the zoom.  It is
        superb.") — the paper's "possibly some surrounding text of the
        sentence determined by the sentiment context window formation
        rule".
        """
        rule = self._context_builder.rule
        if rule.sentences_after == 0 and rule.sentences_before == 0:
            return judgments
        if all(j.polarity.is_polar for j in judgments):
            return judgments
        neighbor_indices = [
            i
            for i in range(index - rule.sentences_before, index + rule.sentences_after + 1)
            if i != index and 0 <= i < len(sentences)
        ]
        inherited: Polarity | None = None
        provenance = None
        for i in neighbor_indices:
            tagged = self._analyzer.tag(sentences[i])
            assignment = self._analyzer.pronoun_assignment(tagged)
            if assignment is not None:
                inherited = assignment.polarity
                provenance = assignment.provenance
                break
        if inherited is None:
            return judgments
        widened = []
        for judgment in judgments:
            if judgment.polarity.is_polar:
                widened.append(judgment)
            else:
                widened.append(
                    SentimentJudgment(
                        spot=judgment.spot,
                        polarity=inherited,
                        provenance=provenance,
                        sentence_span=judgment.sentence_span,
                    )
                )
        return widened

    def mine_corpus(
        self, documents: Iterable[tuple[str, str]]
    ) -> MiningResult:
        """Mine ``(document_id, text)`` pairs; results are concatenated."""
        total = MiningResult()
        for document_id, text in documents:
            result = self.mine_document(text, document_id)
            total.judgments.extend(result.judgments)
            total.stats.merge(result.stats)
        return total

    def contexts(self, text: str, document_id: str = "") -> Iterator:
        """Yield the sentiment contexts mode A would analyze (for tooling)."""
        if self._spotter is None:
            raise ValueError("mode A requires a predefined subject list")
        sentences = self._splitter.split_text(text)
        for spot in self._spotter.spot_document(sentences, document_id):
            yield self._context_builder.build(sentences, spot)

    # -- mode B: open subjects ------------------------------------------------------

    def mine_open_document(self, text: str, document_id: str = "") -> MiningResult:
        """Run the Fig. 3 pipeline: named entities as subjects.

        Only sentiment-bearing sentences are analyzed, mirroring the
        paper's offline whole-corpus pass that feeds the sentiment index.
        """
        result = MiningResult()
        result.stats.documents = 1
        sentences = self._splitter.split_text(text)
        result.stats.sentences = len(sentences)
        for sentence in sentences:
            tagged = self._analyzer.tag(sentence)
            spots = self._ne_spotter.spot_sentence(tagged, document_id)
            result.stats.spots_found += len(spots)
            if not spots or not self._analyzer.bears_sentiment(tagged):
                continue
            result.stats.spots_on_topic += len(spots)
            judgments = self._analyzer.judge_spots(tagged, spots)
            self._record(result, judgments)
        return result

    def mine_open_corpus(self, documents: Iterable[tuple[str, str]]) -> MiningResult:
        """Mode B over ``(document_id, text)`` pairs."""
        total = MiningResult()
        for document_id, text in documents:
            result = self.mine_open_document(text, document_id)
            total.judgments.extend(result.judgments)
            total.stats.merge(result.stats)
        return total

    # -- shared ------------------------------------------------------------------------

    @staticmethod
    def _record(result: MiningResult, judgments: list[SentimentJudgment]) -> None:
        for judgment in judgments:
            result.judgments.append(judgment)
            if judgment.polarity is Polarity.NEUTRAL:
                result.stats.judgments_neutral += 1
            else:
                result.stats.judgments_polar += 1
