"""The sentiment miner: end-to-end orchestration of both operational modes.

Mode A — *predefined subjects* (paper Fig. 2): spotter → disambiguator →
sentiment-context formation → sentiment analyzer.

Mode B — *no predefined subjects* (paper Fig. 3): named-entity spotter →
sentiment-bearing sentence filter → analyzer; results feed the sentiment
index for query-time lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..obs import Obs
from ..obs.audit import CONTEXT_WINDOW, NO_MATCH, PATTERN_MATCH, AuditEntry
from ..nlp.sentences import SentenceSplitter
from ..nlp.tokenizer import Tokenizer
from .analyzer import SentimentAnalyzer
from .context import ContextBuilder, ContextWindowRule
from .disambiguation import Disambiguator
from .model import Polarity, SentimentJudgment, Spot, Subject
from .spotting import NamedEntitySpotter, SubjectSpotter

#: Nominal simulated cost one pipeline stage charges per document —
#: keeps standalone-miner span durations in the same currency the
#: cluster uses (one entity ≈ 1.0 units across its stages).
STAGE_COST = 0.25


@dataclass
class MiningStats:
    """Counters describing one mining run."""

    documents: int = 0
    sentences: int = 0
    spots_found: int = 0
    spots_on_topic: int = 0
    judgments_polar: int = 0
    judgments_neutral: int = 0

    def merge(self, other: "MiningStats") -> None:
        self.documents += other.documents
        self.sentences += other.sentences
        self.spots_found += other.spots_found
        self.spots_on_topic += other.spots_on_topic
        self.judgments_polar += other.judgments_polar
        self.judgments_neutral += other.judgments_neutral


@dataclass
class MiningResult:
    """Judgments plus run statistics.

    ``audit`` carries the decision audit trail for the run — one entry
    per disambiguator keep/filter and per sentiment judgment — when the
    miner was built with an auditing :class:`~repro.obs.Obs` context;
    it stays empty under the zero-cost default.
    """

    judgments: list[SentimentJudgment] = field(default_factory=list)
    stats: MiningStats = field(default_factory=MiningStats)
    audit: list[AuditEntry] = field(default_factory=list)

    def polar_judgments(self) -> list[SentimentJudgment]:
        return [j for j in self.judgments if j.polarity.is_polar]

    def by_subject(self) -> dict[str, list[SentimentJudgment]]:
        out: dict[str, list[SentimentJudgment]] = {}
        for judgment in self.judgments:
            out.setdefault(judgment.subject_name, []).append(judgment)
        return out


class SentimentMiner:
    """Entity-level sentiment miner with two operational modes."""

    def __init__(
        self,
        subjects: list[Subject] | None = None,
        analyzer: SentimentAnalyzer | None = None,
        disambiguator: Disambiguator | None = None,
        context_rule: ContextWindowRule | None = None,
        obs: Obs | None = None,
        spotter: SubjectSpotter | None = None,
        split_memo_size: int = 64,
    ):
        self._obs = obs if obs is not None else Obs.default()
        self._subjects = list(subjects or [])
        self._analyzer = analyzer or SentimentAnalyzer(obs=self._obs)
        self._disambiguator = disambiguator
        self._context_builder = ContextBuilder(context_rule)
        # ``spotter`` overrides the compiled default — the differential
        # test harness injects the naive reference implementation here.
        if spotter is not None:
            self._spotter = spotter
        else:
            self._spotter = SubjectSpotter(self._subjects) if self._subjects else None
        self._ne_spotter = NamedEntitySpotter()
        self._tokenizer = Tokenizer()
        self._splitter = SentenceSplitter(self._tokenizer, memo_size=split_memo_size)

    @property
    def analyzer(self) -> SentimentAnalyzer:
        return self._analyzer

    @property
    def subjects(self) -> list[Subject]:
        return list(self._subjects)

    # -- mode A: predefined subject set -------------------------------------------

    def mine_document(self, text: str, document_id: str = "") -> MiningResult:
        """Run the Fig. 2 pipeline on one document."""
        if self._spotter is None:
            raise ValueError("mode A requires a predefined subject list")
        obs = self._obs
        tracer = obs.tracer
        audit_mark = obs.audit.mark()
        result = MiningResult()
        result.stats.documents = 1
        with tracer.span("mine.document", document_id=document_id, mode="A") as doc_span:
            sentences = self._splitter.split_text(text)
            result.stats.sentences = len(sentences)
            with tracer.span("stage.spot", sentences=len(sentences)) as span:
                obs.clock.advance(STAGE_COST)
                spots = self._spotter.spot_document(sentences, document_id)
                span.set_attribute("spots", len(spots))
            result.stats.spots_found = len(spots)
            if self._disambiguator is not None:
                with tracer.span("stage.disambiguate", spots=len(spots)) as span:
                    obs.clock.advance(STAGE_COST)
                    spots = self._disambiguator.disambiguate(
                        sentences, spots, audit=obs.audit
                    ).on_topic
                    span.set_attribute("on_topic", len(spots))
            result.stats.spots_on_topic = len(spots)

            spots_by_sentence: dict[int, list[Spot]] = {}
            for spot in spots:
                spots_by_sentence.setdefault(spot.sentence_index, []).append(spot)
            with tracer.span(
                "stage.analyze", sentences_with_spots=len(spots_by_sentence)
            ):
                obs.clock.advance(STAGE_COST)
                self._analyze_spotted(sentences, spots_by_sentence, result)
            doc_span.set_attribute("judgments", len(result.judgments))
        self._publish(result)
        result.audit = obs.audit.since(audit_mark)
        return result

    def _analyze_spotted(
        self,
        sentences: list,
        spots_by_sentence: dict[int, list[Spot]],
        result: MiningResult,
    ) -> None:
        """Judge every spotted sentence, recording into *result*."""
        for index, sentence_spots in sorted(spots_by_sentence.items()):
            sentence = sentences[index]
            tagged = self._analyzer.tag(sentence)
            judgments = self._analyzer.judge_spots(tagged, sentence_spots)
            judgments, inherited = self._widen_with_context(
                sentences, index, judgments
            )
            self._record(result, judgments, context_inherited=inherited)

    def _widen_with_context(
        self,
        sentences: list,
        index: int,
        judgments: list[SentimentJudgment],
    ) -> tuple[list[SentimentJudgment], frozenset[int]]:
        """Context-window attribution for anaphora.

        When the window rule includes neighbouring sentences, a spot left
        NEUTRAL by its own sentence inherits a polarity assigned to a bare
        pronoun subject in a window sentence ("I tested the zoom.  It is
        superb.") — the paper's "possibly some surrounding text of the
        sentence determined by the sentiment context window formation
        rule".

        Returns the (possibly rewritten) judgments plus the positions
        that inherited their polarity from the window, so the audit
        trail can label them ``context-window`` rather than
        ``pattern-match``.
        """
        rule = self._context_builder.rule
        if rule.sentences_after == 0 and rule.sentences_before == 0:
            return judgments, frozenset()
        if all(j.polarity.is_polar for j in judgments):
            return judgments, frozenset()
        neighbor_indices = [
            i
            for i in range(index - rule.sentences_before, index + rule.sentences_after + 1)
            if i != index and 0 <= i < len(sentences)
        ]
        inherited: Polarity | None = None
        provenance = None
        for i in neighbor_indices:
            tagged = self._analyzer.tag(sentences[i])
            assignment = self._analyzer.pronoun_assignment(tagged)
            if assignment is not None:
                inherited = assignment.polarity
                provenance = assignment.provenance
                break
        if inherited is None:
            return judgments, frozenset()
        widened = []
        inherited_positions = set()
        for position, judgment in enumerate(judgments):
            if judgment.polarity.is_polar:
                widened.append(judgment)
            else:
                inherited_positions.add(position)
                widened.append(
                    SentimentJudgment(
                        spot=judgment.spot,
                        polarity=inherited,
                        provenance=provenance,
                        sentence_span=judgment.sentence_span,
                    )
                )
        return widened, frozenset(inherited_positions)

    def mine_corpus(
        self, documents: Iterable[tuple[str, str]]
    ) -> MiningResult:
        """Mine ``(document_id, text)`` pairs; results are concatenated."""
        total = MiningResult()
        with self._obs.tracer.span("mine.corpus", mode="A") as span:
            for document_id, text in documents:
                result = self.mine_document(text, document_id)
                total.judgments.extend(result.judgments)
                total.stats.merge(result.stats)
                total.audit.extend(result.audit)
            span.set_attribute("documents", total.stats.documents)
            span.set_attribute("judgments", len(total.judgments))
        return total

    def mine_batch(self, documents: Iterable[tuple[str, str]]) -> MiningResult:
        """Mode A over a document batch, one tight loop per pipeline stage.

        Where :meth:`mine_corpus` re-enters the full stack per document,
        this splits the whole batch, then spots the whole batch, then
        disambiguates, then analyzes — so each stage's tables and caches
        stay hot across the slice.  The result is byte-identical to
        :meth:`mine_corpus` on the same documents: same judgments in the
        same order, same stats, and the same per-document audit-entry
        sequence (``MiningResult.audit`` is assembled in document order
        even though the global trail records stage-major).

        Simulated cost is charged per *stage per batch* rather than per
        stage per document — the batching win the throughput benchmark
        measures in docs/sim-sec.
        """
        if self._spotter is None:
            raise ValueError("mode A requires a predefined subject list")
        documents = list(documents)
        obs = self._obs
        tracer = obs.tracer
        total = MiningResult()
        with tracer.span("mine.batch", mode="A", documents=len(documents)) as span:
            with tracer.span("stage.split", documents=len(documents)):
                obs.clock.advance(STAGE_COST)
                sentences_by_doc = [
                    self._splitter.split_text(text) for _, text in documents
                ]
            with tracer.span("stage.spot", documents=len(documents)):
                obs.clock.advance(STAGE_COST)
                spots_by_doc = [
                    self._spotter.spot_document(sentences, document_id)
                    for (document_id, _), sentences in zip(documents, sentences_by_doc)
                ]
            found_counts = [len(spots) for spots in spots_by_doc]
            audit_by_doc: list[list[AuditEntry]] = [[] for _ in documents]
            if self._disambiguator is not None:
                with tracer.span("stage.disambiguate", documents=len(documents)):
                    obs.clock.advance(STAGE_COST)
                    for position, sentences in enumerate(sentences_by_doc):
                        mark = obs.audit.mark()
                        spots_by_doc[position] = self._disambiguator.disambiguate(
                            sentences, spots_by_doc[position], audit=obs.audit
                        ).on_topic
                        audit_by_doc[position] = obs.audit.since(mark)
            results: list[MiningResult] = []
            with tracer.span("stage.analyze", documents=len(documents)):
                obs.clock.advance(STAGE_COST)
                for position, sentences in enumerate(sentences_by_doc):
                    mark = obs.audit.mark()
                    result = MiningResult()
                    result.stats.documents = 1
                    result.stats.sentences = len(sentences)
                    spots = spots_by_doc[position]
                    result.stats.spots_found = found_counts[position]
                    result.stats.spots_on_topic = len(spots)
                    spots_by_sentence: dict[int, list[Spot]] = {}
                    for spot in spots:
                        spots_by_sentence.setdefault(spot.sentence_index, []).append(spot)
                    self._analyze_spotted(sentences, spots_by_sentence, result)
                    audit_by_doc[position] = audit_by_doc[position] + obs.audit.since(mark)
                    results.append(result)
            for position, result in enumerate(results):
                total.judgments.extend(result.judgments)
                total.stats.merge(result.stats)
                total.audit.extend(audit_by_doc[position])
            span.set_attribute("documents", total.stats.documents)
            span.set_attribute("judgments", len(total.judgments))
        self._publish(total)
        return total

    def contexts(self, text: str, document_id: str = "") -> Iterator:
        """Yield the sentiment contexts mode A would analyze (for tooling)."""
        if self._spotter is None:
            raise ValueError("mode A requires a predefined subject list")
        sentences = self._splitter.split_text(text)
        for spot in self._spotter.spot_document(sentences, document_id):
            yield self._context_builder.build(sentences, spot)

    # -- mode B: open subjects ------------------------------------------------------

    def mine_open_document(self, text: str, document_id: str = "") -> MiningResult:
        """Run the Fig. 3 pipeline: named entities as subjects.

        Only sentiment-bearing sentences are analyzed, mirroring the
        paper's offline whole-corpus pass that feeds the sentiment index.
        """
        obs = self._obs
        audit_mark = obs.audit.mark()
        result = MiningResult()
        result.stats.documents = 1
        with obs.tracer.span(
            "mine.document", document_id=document_id, mode="B"
        ) as doc_span:
            sentences = self._splitter.split_text(text)
            result.stats.sentences = len(sentences)
            obs.clock.advance(STAGE_COST)
            for sentence in sentences:
                tagged = self._analyzer.tag(sentence)
                spots = self._ne_spotter.spot_sentence(tagged, document_id)
                result.stats.spots_found += len(spots)
                if not spots or not self._analyzer.bears_sentiment(tagged):
                    continue
                result.stats.spots_on_topic += len(spots)
                judgments = self._analyzer.judge_spots(tagged, spots)
                self._record(result, judgments)
            doc_span.set_attribute("judgments", len(result.judgments))
        self._publish(result)
        result.audit = obs.audit.since(audit_mark)
        return result

    def mine_open_corpus(self, documents: Iterable[tuple[str, str]]) -> MiningResult:
        """Mode B over ``(document_id, text)`` pairs."""
        total = MiningResult()
        with self._obs.tracer.span("mine.corpus", mode="B") as span:
            for document_id, text in documents:
                result = self.mine_open_document(text, document_id)
                total.judgments.extend(result.judgments)
                total.stats.merge(result.stats)
                total.audit.extend(result.audit)
            span.set_attribute("documents", total.stats.documents)
            span.set_attribute("judgments", len(total.judgments))
        return total

    # -- shared ------------------------------------------------------------------------

    def _record(
        self,
        result: MiningResult,
        judgments: list[SentimentJudgment],
        context_inherited: frozenset[int] = frozenset(),
    ) -> None:
        """Accumulate judgments into *result*, auditing each decision."""
        audit = self._obs.audit
        for position, judgment in enumerate(judgments):
            result.judgments.append(judgment)
            if judgment.polarity is Polarity.NEUTRAL:
                result.stats.judgments_neutral += 1
            else:
                result.stats.judgments_polar += 1
            if not audit.enabled:
                continue
            provenance = judgment.provenance
            if position in context_inherited:
                reason = CONTEXT_WINDOW
            elif provenance is not None and provenance.pattern:
                reason = PATTERN_MATCH
            else:
                reason = NO_MATCH
            audit.record_sentiment(
                judgment.subject_name,
                judgment.polarity.value,
                reason,
                document_id=judgment.spot.document_id,
                sentence_index=judgment.spot.sentence_index,
                pattern=provenance.pattern if provenance else "",
                predicate=provenance.predicate if provenance else "",
                lexicon_entries=tuple(provenance.sentiment_words) if provenance else (),
                negated=bool(provenance.negated) if provenance else False,
            )

    def _publish(self, result: MiningResult) -> None:
        """Mirror the run's :class:`MiningStats` into the metrics registry."""
        metrics = self._obs.metrics
        stats = result.stats
        self._analyzer.publish_memo_metrics(self._splitter)
        metrics.counter("miner.documents").inc(stats.documents)
        metrics.counter("miner.sentences").inc(stats.sentences)
        metrics.counter("miner.spots_found").inc(stats.spots_found)
        metrics.counter("miner.spots_on_topic").inc(stats.spots_on_topic)
        metrics.counter("miner.judgments_polar").inc(stats.judgments_polar)
        metrics.counter("miner.judgments_neutral").inc(stats.judgments_neutral)
