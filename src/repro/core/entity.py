"""Entities: WebFountain's unit of stored information.

"The WebFountain data store component manages entities that are
represented in XML.  An entity is a referenceable unit of information such
as a Web page.  The data store stores, modifies, and retrieves entities."

An entity carries immutable raw content plus typed, append-only
*annotation layers*.  Miners never mutate the content; they "augment
processed entities with the results" by attaching annotations — token
spans, POS tags, subject spots, sentiment judgments, conceptual tokens.

This module lives in :mod:`repro.core` (not :mod:`repro.platform`) because
entities are the shared vocabulary between the adapter miners and the
platform: miners annotate entities, the platform stores and routes them.
Keeping the type here preserves the import layering
``lexicons/nlp → core/miners → platform → cli`` that ``repro lint``
enforces.  :mod:`repro.platform.entity` re-exports these names for
backward compatibility.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..nlp.tokens import Span


@dataclass(frozen=True)
class Annotation:
    """One typed annotation over a span of the entity's content.

    ``layer`` groups annotations ("token", "sentence", "spot", "sentiment",
    ...); ``label`` is the annotation's value within its layer (a POS tag,
    a subject id, a polarity symbol); ``attributes`` carries layer-specific
    extras (kept JSON-serialisable).
    """

    layer: str
    span: Span
    label: str = ""
    attributes: tuple[tuple[str, Any], ...] = ()

    def attribute(self, key: str, default: Any = None) -> Any:
        for name, value in self.attributes:
            if name == key:
                return value
        return default

    @classmethod
    def make(cls, layer: str, start: int, end: int, label: str = "", **attributes: Any) -> "Annotation":
        return cls(
            layer=layer,
            span=Span(start, end),
            label=label,
            attributes=tuple(sorted(attributes.items())),
        )


@dataclass
class Entity:
    """A referenceable unit of information (e.g. one web page).

    ``entity_id`` is globally unique; ``source`` names the ingestion
    channel ("webcrawl", "newsfeed", "bboard", "customer"); ``metadata``
    is free-form document metadata (URL, fetch date, language, ...).
    """

    entity_id: str
    content: str
    source: str = "webcrawl"
    metadata: dict[str, Any] = field(default_factory=dict)
    _annotations: dict[str, list[Annotation]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.entity_id:
            raise ValueError("entity_id must be non-empty")

    # -- annotations -------------------------------------------------------------

    def annotate(self, annotation: Annotation) -> None:
        """Attach one annotation (append-only)."""
        if annotation.span.end > len(self.content):
            raise ValueError(
                f"annotation span {annotation.span} exceeds content length {len(self.content)}"
            )
        self._annotations.setdefault(annotation.layer, []).append(annotation)

    def annotate_all(self, annotations: Iterator[Annotation] | list[Annotation]) -> None:
        for annotation in annotations:
            self.annotate(annotation)

    def layer(self, name: str) -> list[Annotation]:
        """All annotations in a layer, in insertion order."""
        return list(self._annotations.get(name, ()))

    def layers(self) -> list[str]:
        return sorted(self._annotations)

    def has_layer(self, name: str) -> bool:
        return bool(self._annotations.get(name))

    def clear_layer(self, name: str) -> None:
        """Drop a layer (used when a miner re-runs)."""
        self._annotations.pop(name, None)

    def text_of(self, annotation: Annotation) -> str:
        return annotation.span.text_of(self.content)

    # -- serialisation -----------------------------------------------------------

    def to_record(self) -> dict[str, Any]:
        """JSON-serialisable record (the store's segment format)."""
        return {
            "entity_id": self.entity_id,
            "content": self.content,
            "source": self.source,
            "metadata": self.metadata,
            "annotations": {
                layer: [
                    {
                        "start": a.span.start,
                        "end": a.span.end,
                        "label": a.label,
                        "attributes": dict(a.attributes),
                    }
                    for a in annotations
                ]
                for layer, annotations in self._annotations.items()
            },
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Entity":
        entity = cls(
            entity_id=record["entity_id"],
            content=record["content"],
            source=record.get("source", "webcrawl"),
            metadata=dict(record.get("metadata", {})),
        )
        for layer, annotations in record.get("annotations", {}).items():
            for a in annotations:
                entity.annotate(
                    Annotation.make(layer, a["start"], a["end"], a.get("label", ""), **a.get("attributes", {}))
                )
        return entity

    def to_json(self) -> str:
        return json.dumps(self.to_record(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Entity":
        return cls.from_record(json.loads(text))

    def to_xml(self) -> str:
        """A minimal XML rendering, honouring the paper's representation."""
        meta = "".join(
            f'  <meta name="{key}">{value}</meta>\n' for key, value in sorted(self.metadata.items())
        )
        return (
            f'<entity id="{self.entity_id}" source="{self.source}">\n'
            + meta
            + f"  <content>{_xml_escape(self.content)}</content>\n"
            + "</entity>"
        )


def _xml_escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
