"""Sentiment context construction.

"A small sentiment context for each subject term spot is constructed and
the sentiment miner runs on the context.  A sentiment context generally
consists of the full sentence that contains a subject spot and possibly
some surrounding text of the sentence determined by the sentiment context
window formation rule.  The subject spot is marked by an XML tag and
passed to the sentiment analyzer." (paper Section 3)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nlp.tokens import Sentence, Span
from .model import Spot


@dataclass(frozen=True)
class ContextWindowRule:
    """How many neighbouring sentences join the spot's own sentence."""

    sentences_before: int = 0
    sentences_after: int = 0

    def __post_init__(self) -> None:
        if self.sentences_before < 0 or self.sentences_after < 0:
            raise ValueError("window sizes must be non-negative")


@dataclass(frozen=True)
class SentimentContext:
    """The text window around one spot, ready for the analyzer."""

    spot: Spot
    sentences: tuple[Sentence, ...]
    span: Span
    document_id: str = ""

    @property
    def focus_sentence(self) -> Sentence:
        """The sentence containing the spot itself."""
        for sentence in self.sentences:
            if sentence.start <= self.spot.start < sentence.end:
                return sentence
        # The spot is guaranteed inside the window by construction.
        return self.sentences[0]

    def text_of(self, document: str) -> str:
        return self.span.text_of(document)

    def marked_text(self, document: str, tag: str = "subject") -> str:
        """Context text with the spot wrapped in an XML tag.

        Reproduces the paper's hand-off format: the subject spot is marked
        so the analyzer (or a human inspecting the pipeline) can see which
        occurrence is under analysis.
        """
        text = self.text_of(document)
        rel_start = self.spot.start - self.span.start
        rel_end = self.spot.end - self.span.start
        return (
            text[:rel_start]
            + f'<{tag} id="{self.spot.subject.canonical}">'
            + text[rel_start:rel_end]
            + f"</{tag}>"
            + text[rel_end:]
        )


class ContextBuilder:
    """Build sentiment contexts from sentence-segmented documents."""

    def __init__(self, rule: ContextWindowRule | None = None):
        self._rule = rule or ContextWindowRule()

    @property
    def rule(self) -> ContextWindowRule:
        return self._rule

    def build(self, sentences: list[Sentence], spot: Spot) -> SentimentContext:
        """The context window for *spot* within its document's sentences."""
        if not sentences:
            raise ValueError("cannot build a context from zero sentences")
        focus = self._focus_index(sentences, spot)
        lo = max(0, focus - self._rule.sentences_before)
        hi = min(len(sentences), focus + self._rule.sentences_after + 1)
        window = tuple(sentences[lo:hi])
        span = Span(window[0].start, window[-1].end)
        return SentimentContext(
            spot=spot,
            sentences=window,
            span=span,
            document_id=spot.document_id,
        )

    @staticmethod
    def _focus_index(sentences: list[Sentence], spot: Spot) -> int:
        for i, sentence in enumerate(sentences):
            if sentence.start <= spot.start < sentence.end:
                return i
        raise ValueError(
            f"spot at [{spot.start}, {spot.end}) lies outside every sentence"
        )
