"""Core data model of the sentiment miner.

Terminology follows the paper:

* a **subject** is a topic of interest (company, brand, product name),
  identified by a canonical name and matched through a synonym set;
* a **spot** is one occurrence of a subject term in a document;
* a **sentiment judgment** is the miner's output: a (subject-spot,
  polarity) pair with provenance describing *why* the polarity was
  assigned (which pattern, which sentiment words).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..nlp.tokens import Span


class Polarity(enum.Enum):
    """Sentiment orientation: the deviation from the neutral state."""

    POSITIVE = "+"
    NEGATIVE = "-"
    NEUTRAL = "0"

    def invert(self) -> "Polarity":
        """Reverse polarity; neutral stays neutral."""
        if self is Polarity.POSITIVE:
            return Polarity.NEGATIVE
        if self is Polarity.NEGATIVE:
            return Polarity.POSITIVE
        return Polarity.NEUTRAL

    @property
    def is_polar(self) -> bool:
        """True for positive or negative (non-neutral) sentiment."""
        return self is not Polarity.NEUTRAL

    @classmethod
    def from_symbol(cls, symbol: str) -> "Polarity":
        """Parse the paper's ``+``/``-`` notation (``0`` for neutral)."""
        for member in cls:
            if member.value == symbol:
                return member
        raise ValueError(f"unknown polarity symbol {symbol!r}")

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Subject:
    """A topic of interest with its synonym set.

    "Subject terms are grouped into synonym sets that are user configurable
    and the spotter annotates the occurrences with the synonym set ID."
    """

    canonical: str
    synonyms: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.canonical.strip():
            raise ValueError("subject canonical name must be non-empty")

    @property
    def all_terms(self) -> tuple[str, ...]:
        """Canonical name plus synonyms, canonical first."""
        seen = {self.canonical.lower()}
        terms = [self.canonical]
        for syn in self.synonyms:
            if syn.lower() not in seen:
                seen.add(syn.lower())
                terms.append(syn)
        return tuple(terms)


@dataclass(frozen=True)
class Spot:
    """One occurrence of a subject term in a document."""

    subject: Subject
    term: str
    span: Span
    sentence_index: int
    document_id: str = ""

    @property
    def start(self) -> int:
        return self.span.start

    @property
    def end(self) -> int:
        return self.span.end


@dataclass(frozen=True)
class Provenance:
    """Why a judgment was made: the matched pattern and evidence words.

    ``holder`` is the opinion *source* — "a source may be the writer or
    the third person mentioned in the text" (paper Section 4.2).  The
    writer is the default; experiencer-verb patterns name the subject
    phrase ("Analysts criticized X" → holder "Analysts").
    """

    predicate: str = ""
    pattern: str = ""
    source_role: str = ""
    target_role: str = ""
    sentiment_words: tuple[str, ...] = ()
    negated: bool = False
    holder: str = "writer"

    def describe(self) -> str:
        """One-line human-readable explanation."""
        parts = []
        if self.pattern:
            parts.append(f"pattern[{self.pattern}]")
        if self.sentiment_words:
            parts.append("words[" + ", ".join(self.sentiment_words) + "]")
        if self.negated:
            parts.append("negated")
        if self.holder and self.holder != "writer":
            parts.append(f"holder[{self.holder}]")
        return " ".join(parts) or "lexicon"


@dataclass(frozen=True)
class SentimentJudgment:
    """The miner's output for one subject spot in one sentence."""

    spot: Spot
    polarity: Polarity
    provenance: Provenance = field(default_factory=Provenance)
    sentence_span: Span | None = None

    @property
    def subject_name(self) -> str:
        return self.spot.subject.canonical

    def as_pair(self) -> tuple[str, str]:
        """The paper's presentation format: ``(subject, polarity)``."""
        return (self.spot.subject.canonical, self.polarity.value)


@dataclass(frozen=True)
class FeatureTerm:
    """A feature term of a topic with its selection score.

    "A feature term of a topic is a term that satisfies one of: a part-of
    relationship with the given topic; an attribute-of relationship with
    the given topic; an attribute-of relationship with a known feature."
    """

    term: str
    score: float
    dplus_count: int
    dminus_count: int

    def __post_init__(self) -> None:
        if self.dplus_count < 0 or self.dminus_count < 0:
            raise ValueError("document counts must be non-negative")
