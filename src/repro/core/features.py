"""Feature term extraction: bBNP candidates + likelihood-ratio selection.

Implements Section 4.1 of the paper:

1. extract candidate base noun phrases from the topic-focused collection
   D+ with the **bBNP heuristic** (beginning definite base noun phrases
   followed by a verb phrase);
2. for each candidate, count the documents containing it in D+ (C11) and
   in the off-topic collection D− (C12), and the complements C21/C22;
3. score with **Dunning's likelihood-ratio test** (−2 log λ), zeroing the
   score when the candidate is not positively associated with D+
   (r2 ≥ r1 in the paper's notation);
4. keep candidates above a χ² confidence threshold, or the top N.

Alternative candidate heuristics ("dbnp": all definite bNPs anywhere;
"bnp": all base NPs) and a raw-frequency ranker exist for the ablation
benchmarks DESIGN.md calls out.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable

from ..nlp.chunker import Chunker
from ..nlp.lemmatizer import Lemmatizer
from ..nlp.postagger import PosTagger
from ..nlp.sentences import SentenceSplitter
from ..nlp.tokens import Chunk, TaggedSentence
from .model import FeatureTerm

#: χ² critical values (1 degree of freedom) for the confidence gate.
CHI2_CRITICAL = {0.90: 2.706, 0.95: 3.841, 0.99: 6.635, 0.999: 10.828}

HEURISTICS = ("bbnp", "dbnp", "bnp")
RANKERS = ("likelihood", "frequency")


def _xlogy(x: float, y: float) -> float:
    """x * log(y) with the 0·log(0) = 0 convention."""
    if x == 0.0:
        return 0.0
    return x * math.log(y)


def likelihood_ratio(c11: int, c12: int, c21: int, c22: int) -> float:
    """Dunning's −2 log λ for the 2×2 table of the paper's Table 1.

    ``c11``/``c12``: documents containing the candidate in D+ / D−;
    ``c21``/``c22``: documents *not* containing it in D+ / D−.
    Returns 0.0 when the candidate is not positively associated with D+
    (the paper's ``r2 ≥ r1`` guard).
    """
    for value in (c11, c12, c21, c22):
        if value < 0:
            raise ValueError("contingency counts must be non-negative")
    total = c11 + c12 + c21 + c22
    if total == 0:
        return 0.0
    containing = c11 + c12
    missing = c21 + c22
    if containing == 0 or missing == 0:
        return 0.0
    r1 = c11 / containing
    r2 = c21 / missing
    if r2 >= r1:
        return 0.0
    r = (c11 + c21) / total
    log_l0 = (
        _xlogy(c11 + c21, r)
        + _xlogy(c12 + c22, 1.0 - r)
    )
    log_l1 = (
        _xlogy(c11, r1)
        + _xlogy(c12, 1.0 - r1)
        + _xlogy(c21, r2)
        + _xlogy(c22, 1.0 - r2)
    )
    return max(0.0, 2.0 * (log_l1 - log_l0))


@dataclass(frozen=True)
class FeatureExtractionConfig:
    """Knobs for candidate extraction and selection."""

    heuristic: str = "bbnp"
    ranker: str = "likelihood"
    confidence: float = 0.95
    top_n: int | None = None
    min_support: int = 2

    def __post_init__(self) -> None:
        if self.heuristic not in HEURISTICS:
            raise ValueError(f"heuristic must be one of {HEURISTICS}")
        if self.ranker not in RANKERS:
            raise ValueError(f"ranker must be one of {RANKERS}")
        if self.confidence not in CHI2_CRITICAL:
            raise ValueError(f"confidence must be one of {sorted(CHI2_CRITICAL)}")
        if self.top_n is not None and self.top_n <= 0:
            raise ValueError("top_n must be positive")
        if self.min_support < 1:
            raise ValueError("min_support must be at least 1")


class FeatureExtractor:
    """Extract topic feature terms from D+ against D−."""

    def __init__(
        self,
        config: FeatureExtractionConfig | None = None,
        tagger: PosTagger | None = None,
    ):
        self._config = config or FeatureExtractionConfig()
        self._tagger = tagger or PosTagger()
        self._chunker = Chunker()
        self._splitter = SentenceSplitter()
        self._lemmatizer = Lemmatizer()

    @property
    def config(self) -> FeatureExtractionConfig:
        return self._config

    # -- public API -----------------------------------------------------------

    def extract(self, dplus: Iterable[str], dminus: Iterable[str]) -> list[FeatureTerm]:
        """Feature terms ranked by score, best first.

        *dplus* are topic-focused documents (e.g. product reviews),
        *dminus* documents not focused on the topic.
        """
        dplus = list(dplus)
        dminus = list(dminus)
        candidates, display = self._candidates(dplus)
        if not candidates:
            return []
        plus_df = self._document_frequency(dplus, candidates)
        minus_df = self._document_frequency(dminus, candidates)
        n_plus = len(dplus)
        n_minus = len(dminus)
        scored: list[FeatureTerm] = []
        for key in candidates:
            c11 = plus_df.get(key, 0)
            c12 = minus_df.get(key, 0)
            if c11 < self._config.min_support:
                continue
            if self._config.ranker == "likelihood":
                score = likelihood_ratio(c11, c12, n_plus - c11, n_minus - c12)
            else:
                score = float(c11)
            scored.append(
                FeatureTerm(term=display[key], score=score, dplus_count=c11, dminus_count=c12)
            )
        scored.sort(key=lambda f: (-f.score, f.term))
        return self._select(scored)

    def candidate_phrases(self, document: str) -> list[str]:
        """Candidate feature phrases one document yields (normalised)."""
        keys: list[str] = []
        for tagged in self._tagged_sentences(document):
            for chunk in self._chunks_for(tagged):
                keys.append(self._normalise(chunk))
        return keys

    # -- internals --------------------------------------------------------------

    def _select(self, scored: list[FeatureTerm]) -> list[FeatureTerm]:
        if self._config.top_n is not None:
            return scored[: self._config.top_n]
        if self._config.ranker == "frequency":
            return scored
        threshold = CHI2_CRITICAL[self._config.confidence]
        return [f for f in scored if f.score > threshold]

    def _tagged_sentences(self, document: str) -> list[TaggedSentence]:
        return [self._tagger.tag(s) for s in self._splitter.split_text(document)]

    def _chunks_for(self, tagged: TaggedSentence) -> list[Chunk]:
        if self._config.heuristic == "bbnp":
            return self._chunker.beginning_definite_bnps(tagged)
        if self._config.heuristic == "dbnp":
            return self._chunker.definite_bnps(tagged)
        return self._chunker.base_noun_phrases(tagged)

    def _normalise(self, chunk: Chunk) -> str:
        """Lowercase, plural-fold the head noun: "The Batteries" → battery."""
        words = [t.lower for t in chunk.tokens]
        head = chunk.tokens[-1]
        words[-1] = self._lemmatizer.lemmatize(head.text, head.tag)
        return " ".join(words)

    def _candidates(self, dplus: list[str]) -> tuple[set[str], dict[str, str]]:
        """Candidate keys from D+ and a display form for each."""
        counter: Counter[str] = Counter()
        for document in dplus:
            counter.update(self.candidate_phrases(document))
        display = {key: key for key in counter}
        return set(counter), display

    def _document_frequency(self, documents: list[str], candidates: set[str]) -> dict[str, int]:
        """How many documents contain each candidate as a token n-gram."""
        max_len = max((key.count(" ") + 1 for key in candidates), default=1)
        df: dict[str, int] = {}
        for document in documents:
            seen: set[str] = set()
            for tagged in self._tagged_sentences(document):
                tokens = tagged.tokens
                n = len(tokens)
                for i in range(n):
                    for length in range(1, min(max_len, n - i) + 1):
                        window = tokens[i : i + length]
                        words = [t.lower for t in window]
                        words[-1] = self._lemmatizer.lemmatize(window[-1].text, window[-1].tag)
                        key = " ".join(words)
                        if key in candidates:
                            seen.add(key)
            for key in seen:
                df[key] = df.get(key, 0) + 1
        return df
