"""The miner framework: entity-level and corpus-level miners.

"There are two types of miners in WebFountain: entity-level and
corpus-level (cross-entity) miners.  Entity-level miners process each
entity without information from neighboring entities, and typically
augment processed entities with the results.  In contrast, corpus-level
miners require all or part of the entire data in store."

A :class:`MinerPipeline` runs an ordered chain of entity miners over the
data store, validating layer dependencies (a miner declaring
``requires = ("token",)`` cannot run before something ``provides`` it).
Corpus miners implement map/reduce-style hooks so the simulated cluster
can execute them per-partition and merge.

The framework is deliberately store-agnostic: it talks to any object
satisfying the :class:`EntityStore` protocol, so it can live below
:mod:`repro.platform` in the import DAG (``core/miners → platform``)
while :class:`repro.platform.datastore.DataStore` remains the production
implementation.  :mod:`repro.platform.miners` re-exports these names for
backward compatibility.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Generic, Iterable, Iterator, Protocol, TypeVar

from .entity import Entity

T = TypeVar("T")


class EntityPartition(Protocol):
    """One shard of an entity store, scannable in stable order."""

    def scan(self) -> Iterator[Entity]: ...


class EntityStore(Protocol):
    """The store surface the miner framework needs.

    :class:`repro.platform.datastore.DataStore` satisfies this protocol;
    tests may substitute any in-memory object with the same methods.
    """

    @property
    def num_partitions(self) -> int: ...

    def scan(self) -> Iterator[Entity]: ...

    def store(self, entity: Entity) -> None: ...

    def partition(self, index: int) -> EntityPartition: ...


class EntityMiner(abc.ABC):
    """A miner that annotates one entity at a time."""

    #: Unique miner name (used in pipeline diagnostics).
    name: str = "entity-miner"
    #: Annotation layers this miner reads.
    requires: tuple[str, ...] = ()
    #: Annotation layers this miner writes.
    provides: tuple[str, ...] = ()

    @abc.abstractmethod
    def process(self, entity: Entity) -> None:
        """Annotate *entity* in place."""

    def reset(self) -> None:
        """Clear per-run state (optional)."""


class CorpusMiner(abc.ABC, Generic[T]):
    """A miner over the whole corpus, expressed as map + reduce."""

    name: str = "corpus-miner"
    requires: tuple[str, ...] = ()

    @abc.abstractmethod
    def map_partition(self, entities: Iterable[Entity]) -> T:
        """Process one partition's entities into a partial result."""

    @abc.abstractmethod
    def reduce(self, partials: list[T]) -> T:
        """Merge partial results into the final one."""


class PipelineError(RuntimeError):
    """Raised when miner dependencies cannot be satisfied."""


@dataclass
class PipelineReport:
    """What one pipeline run did."""

    entities_processed: int = 0
    miner_runs: dict[str, int] = field(default_factory=dict)
    errors: list[tuple[str, str, str]] = field(default_factory=list)  # (miner, entity, error)

    def merge(self, other: "PipelineReport") -> None:
        self.entities_processed += other.entities_processed
        for name, count in other.miner_runs.items():
            self.miner_runs[name] = self.miner_runs.get(name, 0) + count
        self.errors.extend(other.errors)


class MinerPipeline:
    """An ordered chain of entity miners with dependency validation."""

    def __init__(self, miners: list[EntityMiner], strict: bool = True):
        self._miners = list(miners)
        self._strict = strict
        self._validate()

    @property
    def miners(self) -> list[EntityMiner]:
        return list(self._miners)

    def _validate(self) -> None:
        available: set[str] = set()
        for miner in self._miners:
            missing = [layer for layer in miner.requires if layer not in available]
            if missing:
                raise PipelineError(
                    f"miner {miner.name!r} requires layers {missing} not provided upstream"
                )
            available.update(miner.provides)

    # -- execution -------------------------------------------------------------------------

    def process_entity(self, entity: Entity, report: PipelineReport | None = None) -> Entity:
        """Run every miner on one entity, in order."""
        report = report if report is not None else PipelineReport()
        produced: set[str] = set()
        for miner in self._miners:
            # A layer is satisfied if an upstream miner ran for it on this
            # entity (even yielding zero annotations) or the stored entity
            # already carries it.
            missing = [
                layer
                for layer in miner.requires
                if layer not in produced and not entity.has_layer(layer)
            ]
            if missing:
                if self._strict:
                    raise PipelineError(
                        f"entity {entity.entity_id!r} missing layers {missing} "
                        f"for {miner.name!r}"
                    )
                continue
            try:
                miner.process(entity)
            except Exception as exc:  # noqa: BLE001 — isolate miner crashes
                report.errors.append((miner.name, entity.entity_id, str(exc)))
                if self._strict:
                    raise
                continue
            produced.update(miner.provides)
            report.miner_runs[miner.name] = report.miner_runs.get(miner.name, 0) + 1
        report.entities_processed += 1
        return entity

    def process_batch(
        self, entities: list[Entity], report: PipelineReport | None = None
    ) -> PipelineReport:
        """Run the pipeline over an entity slice, one miner at a time.

        Where :meth:`process_entity` re-enters the whole miner chain per
        entity, this loops *miner-major*: each stage sweeps the full
        slice before the next stage starts, so per-miner tables (spotting
        automata, parse memos, lexicon probe caches) stay hot across the
        batch.  Per-entity semantics are identical — the same dependency
        checks, the same error isolation, the same end state — which the
        batch-equivalence tests pin down, including under chaos failover.
        """
        report = report if report is not None else PipelineReport()
        produced: list[set[str]] = [set() for _ in entities]
        for miner in self._miners:
            for index, entity in enumerate(entities):
                missing = [
                    layer
                    for layer in miner.requires
                    if layer not in produced[index] and not entity.has_layer(layer)
                ]
                if missing:
                    if self._strict:
                        raise PipelineError(
                            f"entity {entity.entity_id!r} missing layers {missing} "
                            f"for {miner.name!r}"
                        )
                    continue
                try:
                    miner.process(entity)
                except Exception as exc:  # noqa: BLE001 — isolate miner crashes
                    report.errors.append((miner.name, entity.entity_id, str(exc)))
                    if self._strict:
                        raise
                    continue
                produced[index].update(miner.provides)
                report.miner_runs[miner.name] = report.miner_runs.get(miner.name, 0) + 1
        report.entities_processed += len(entities)
        return report

    def run(self, store: EntityStore) -> PipelineReport:
        """Run over every entity in the store, writing results back."""
        report = PipelineReport()
        for entity in list(store.scan()):
            self.process_entity(entity, report)
            store.store(entity)
        return report

    def run_over(self, entities: Iterable[Entity]) -> PipelineReport:
        """Run over an entity stream without a store (annotates in place)."""
        report = PipelineReport()
        for entity in entities:
            self.process_entity(entity, report)
        return report


def run_corpus_miner(miner: CorpusMiner[T], store: EntityStore) -> T:
    """Execute a corpus miner partition-by-partition, then reduce.

    This is the single-node path; :mod:`repro.platform.cluster` runs the
    same hooks across simulated nodes.
    """
    partials = [
        miner.map_partition(store.partition(i).scan()) for i in range(store.num_partitions)
    ]
    return miner.reduce(partials)


__all__ = [
    "CorpusMiner",
    "EntityMiner",
    "EntityPartition",
    "EntityStore",
    "MinerPipeline",
    "PipelineError",
    "PipelineReport",
    "run_corpus_miner",
]
