"""The sentiment analyzer: pattern matching and relationship analysis.

Implements Section 4.2 of the paper.  For each parsed clause:

1. identify the predicate and look its lemma up in the sentiment pattern
   database;
2. take the *best matching* pattern — the first (highest-priority) rule
   whose target component is present in the clause and, for transfer
   rules, whose source component is present and sentiment-bearing;
3. compute the polarity: the rule's fixed polarity, or the source
   phrase's polarity (optionally inverted by ``~``);
4. reverse the polarity when the verb phrase is negated ("if an adverb
   with negative meaning appears in a verb phrase, the sentiment miner
   reverses the sentiment of the sentence assigned by the corresponding
   sentiment pattern");
5. assign the polarity to the target phrase, and through it to any
   subject spot that overlaps the target.

Spots that receive no assignment are judged NEUTRAL — the paper includes
neutral cases in its accuracy computation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..lexicons.negation import NEGATION_VERBS
from ..obs import Obs
from ..nlp import penn
from ..nlp.parse_cache import ParseMemo
from ..nlp.parser import Clause, SentenceParse, ShallowParser
from ..nlp.postagger import PosTagger
from ..nlp.sentences import SentenceSplitter
from ..nlp.tokenizer import Tokenizer
from ..nlp.tokens import Chunk, Sentence, Span, TaggedSentence
from .lexicon import SentimentLexicon, default_lexicon
from .model import Polarity, Provenance, SentimentJudgment, Spot, Subject
from .patterns import ComponentRef, SentimentPattern, SentimentPatternDB, default_pattern_db
from .phrase import PhraseScorer
from .spotting import SubjectSpotter


@dataclass(frozen=True)
class ClauseAssignment:
    """A polarity assigned to a set of character spans in one clause."""

    spans: tuple[Span, ...]
    polarity: Polarity
    provenance: Provenance

    def covers(self, span: Span) -> bool:
        """True when *span* overlaps any of the assignment's spans."""
        return any(s.overlaps(span) for s in self.spans)


class SentimentAnalyzer:
    """Sentence-level sentiment extraction with target association."""

    def __init__(
        self,
        lexicon: SentimentLexicon | None = None,
        pattern_db: SentimentPatternDB | None = None,
        weighted_phrases: bool = False,
        use_patterns: bool = True,
        handle_negation: bool = True,
        obs: Obs | None = None,
        parse_memo_size: int = 128,
        tag_memo_size: int = 256,
        split_memo_size: int = 64,
    ):
        self._obs = obs if obs is not None else Obs.default()
        self._lexicon = lexicon if lexicon is not None else default_lexicon()
        self._patterns = pattern_db if pattern_db is not None else default_pattern_db()
        # The tagger and lemmatizer must know every pattern predicate as a
        # verb, or inflected forms like "fixes" fall through to noun tags.
        # Predicates override lexicon POS entries: many sentiment nouns
        # ("mistrust", "crash", "praise") double as pattern predicates, and
        # the contextual tagging rules can still flip a VB prior back to NN
        # in noun positions, while a NN prior would kill the pattern match.
        predicates = set(self._patterns.predicates)
        tagger_lexicon = self._lexicon.tagger_entries()
        for predicate in predicates:
            tagger_lexicon[predicate] = "VB"
        self._tagger = PosTagger(extra_lexicon=tagger_lexicon, memo_size=tag_memo_size)
        from ..nlp.lemmatizer import Lemmatizer

        self._parser = ShallowParser(lemmatizer=Lemmatizer(extra_verb_bases=predicates))
        # Hot-path tables, precompiled once per analyzer (DESIGN.md §5g):
        # the predicate lemma set (bears_sentiment probes it per token),
        # the bounded parse memo, and a small cache of compiled subject
        # spotters so repeated analyze_text calls with the same subject
        # list reuse one automaton instead of rebuilding it per document.
        self._predicate_lemmas = frozenset(predicates)
        self._parse_memo = ParseMemo(self._parser, maxsize=parse_memo_size)
        self._spotter_cache: OrderedDict[tuple[Subject, ...], SubjectSpotter] = OrderedDict()
        self._scorer = PhraseScorer(self._lexicon, weighted=weighted_phrases)
        self._tokenizer = Tokenizer()
        self._splitter = SentenceSplitter(self._tokenizer, memo_size=split_memo_size)
        # Ablation switches (DESIGN.md "ablations"): pattern DB off falls
        # back to pure phrase polarity around the spot; negation off skips
        # step 4.
        self._use_patterns = use_patterns
        self._handle_negation = handle_negation

    # -- pipeline entry points -------------------------------------------------

    @property
    def lexicon(self) -> SentimentLexicon:
        return self._lexicon

    @property
    def tagger(self) -> PosTagger:
        return self._tagger

    @property
    def parse_memo(self) -> ParseMemo:
        return self._parse_memo

    def tag(self, sentence: Sentence) -> TaggedSentence:
        """POS-tag with the lexicon-extended tagger."""
        return self._tagger.tag(sentence)

    def _parse(self, tagged: TaggedSentence) -> SentenceParse:
        """Parse through the bounded memo, mirroring hit/miss metrics."""
        parse, from_cache = self._parse_memo.parse_with_status(tagged)
        self._obs.metrics.counter(
            "analyzer.parse_memo_hits" if from_cache else "analyzer.parse_memo_misses"
        ).inc()
        return parse

    def publish_memo_metrics(self, splitter: SentenceSplitter | None = None) -> None:
        """Mirror the nlp-layer memo counters into the metrics registry.

        The nlp package sits below obs in the import order (ARCH001), so
        the memo classes keep plain integer counters; the analyzer owns
        the registry handle and republishes them as ``nlp.memo_*``
        series labelled by memo.  Callers that split with their own
        :class:`SentenceSplitter` (the miner does) pass it in so the
        ``split`` series reflects the memo actually on the hot path.
        """
        metrics = self._obs.metrics
        stats_by_memo = {
            "split": (splitter or self._splitter).memo_stats(),
            "tag": self._tagger.memo_stats(),
            "parse": self._parse_memo.memo_stats(),
        }
        for memo, stats in stats_by_memo.items():
            metrics.counter("nlp.memo_hits", memo=memo).set(stats["hits"])
            metrics.counter("nlp.memo_misses", memo=memo).set(stats["misses"])
            metrics.counter("nlp.memo_evictions", memo=memo).set(stats["evictions"])

    def _spotter_for(self, subjects: list[Subject]) -> SubjectSpotter:
        """A compiled spotter for *subjects*, cached per subject tuple."""
        key = tuple(subjects)
        spotter = self._spotter_cache.get(key)
        if spotter is None:
            spotter = SubjectSpotter(subjects)
            self._spotter_cache[key] = spotter
            if len(self._spotter_cache) > 8:
                self._spotter_cache.popitem(last=False)
        else:
            self._spotter_cache.move_to_end(key)
        return spotter

    def analyze_sentence(self, tagged: TaggedSentence) -> list[ClauseAssignment]:
        """All polarity assignments the sentence's clauses yield."""
        metrics = self._obs.metrics
        metrics.counter("analyzer.sentences").inc()
        if tagged.tokens[-1].text == "?":
            # Questions ask about sentiment; they do not assert it.
            metrics.counter("analyzer.questions_skipped").inc()
            return []
        parse = self._parse(tagged)
        assignments: list[ClauseAssignment] = []
        for clause in parse.clauses:
            metrics.counter("analyzer.clauses").inc()
            if clause.hypothetical:
                # "If the zoom were better ..." asserts nothing.
                metrics.counter("analyzer.hypothetical_skipped").inc()
                continue
            assignment = self._analyze_clause(clause)
            if assignment is not None:
                assignments.append(assignment)
                contrast = self._contrast_assignment(clause, assignment)
                if contrast is not None:
                    assignments.append(contrast)
        if not self._use_patterns:
            assignments = self._lexicon_only_assignments(tagged)
        metrics.counter("analyzer.assignments").inc(len(assignments))
        return assignments

    def judge_spots(self, tagged: TaggedSentence, spots: list[Spot]) -> list[SentimentJudgment]:
        """One judgment per spot; NEUTRAL when nothing matched it."""
        assignments = self.analyze_sentence(tagged)
        sentence_span = tagged.span
        judgments: list[SentimentJudgment] = []
        for spot in spots:
            matched = None
            for assignment in assignments:
                if assignment.covers(spot.span):
                    matched = assignment
                    break
            if matched is None:
                judgments.append(
                    SentimentJudgment(spot=spot, polarity=Polarity.NEUTRAL, sentence_span=sentence_span)
                )
            else:
                judgments.append(
                    SentimentJudgment(
                        spot=spot,
                        polarity=matched.polarity,
                        provenance=matched.provenance,
                        sentence_span=sentence_span,
                    )
                )
        return judgments

    def analyze_text(self, text: str, subjects: list[Subject], document_id: str = "") -> list[SentimentJudgment]:
        """Full pipeline on raw text: tokenize, spot, tag, judge."""
        with self._obs.tracer.span(
            "analyze.text", document_id=document_id, subjects=len(subjects)
        ) as span:
            sentences = self._splitter.split_text(text)
            spotter = self._spotter_for(subjects)
            judgments = self._judge_sentences(sentences, spotter, document_id)
            span.set_attribute("sentences", len(sentences))
            span.set_attribute("judgments", len(judgments))
            if self._obs.audit.enabled:
                for judgment in judgments:
                    self._audit_judgment(judgment)
            self.publish_memo_metrics()
            return judgments

    def analyze_batch(
        self,
        documents: list[tuple[str, str]],
        subjects: list[Subject],
    ) -> list[list[SentimentJudgment]]:
        """Batched full pipeline over ``(document_id, text)`` pairs.

        Each stage loops tight over the whole batch (split all, spot
        all, judge all) instead of re-entering the full stack per
        document.  Per document, the returned judgment list — and the
        audit entries recorded for it — are byte-identical to a
        :meth:`analyze_text` call for that document alone.
        """
        documents = list(documents)
        with self._obs.tracer.span(
            "analyze.batch", documents=len(documents), subjects=len(subjects)
        ) as span:
            spotter = self._spotter_for(subjects)
            sentences_by_doc = [
                self._splitter.split_text(text) for _, text in documents
            ]
            results = [
                self._judge_sentences(sentences, spotter, document_id)
                for (document_id, _), sentences in zip(documents, sentences_by_doc)
            ]
            span.set_attribute("judgments", sum(len(r) for r in results))
            if self._obs.audit.enabled:
                for judgments in results:
                    for judgment in judgments:
                        self._audit_judgment(judgment)
            self.publish_memo_metrics()
            return results

    def _judge_sentences(
        self,
        sentences: list[Sentence],
        spotter: SubjectSpotter,
        document_id: str,
    ) -> list[SentimentJudgment]:
        """Spot, tag, and judge one document's sentences."""
        judgments: list[SentimentJudgment] = []
        for sentence in sentences:
            spots = spotter.spot_sentence(sentence, document_id)
            if not spots:
                continue
            tagged = self.tag(sentence)
            judgments.extend(self.judge_spots(tagged, spots))
        return judgments

    def _audit_judgment(self, judgment: SentimentJudgment) -> None:
        provenance = judgment.provenance
        matched = provenance is not None and provenance.pattern
        self._obs.audit.record_sentiment(
            judgment.subject_name,
            judgment.polarity.value,
            "pattern-match" if matched else "no-match",
            document_id=judgment.spot.document_id,
            sentence_index=judgment.spot.sentence_index,
            pattern=provenance.pattern if provenance else "",
            predicate=provenance.predicate if provenance else "",
            lexicon_entries=tuple(provenance.sentiment_words) if provenance else (),
            negated=bool(provenance.negated) if provenance else False,
        )

    # -- clause analysis ---------------------------------------------------------

    def _analyze_clause(self, clause: Clause) -> ClauseAssignment | None:
        # Try the head predicate first, then earlier verbs in the group:
        # "fails to meet our expectations" has no pattern for "meet" but
        # "fail" carries the sentiment itself.
        for lemma, verb_index in self._candidate_predicates(clause):
            assignment = self._match_patterns(clause, lemma, verb_index)
            if assignment is not None:
                return assignment
        return None

    def _candidate_predicates(self, clause: Clause) -> list[tuple[str, int]]:
        from ..nlp.lemmatizer import lemmatize

        verbs = [t for t in clause.predicate.tokens if t.tag in penn.VERB_TAGS]
        candidates: list[tuple[str, int]] = [(clause.predicate_lemma, len(verbs) - 1)]
        for index in range(len(verbs) - 2, -1, -1):
            lemma = lemmatize(verbs[index].text, verbs[index].tag)
            if lemma not in {c for c, _ in candidates}:
                candidates.append((lemma, index))
        return candidates

    def _match_patterns(
        self, clause: Clause, lemma: str, verb_index: int
    ) -> ClauseAssignment | None:
        negated = clause.negated or self._negation_verb_before(clause, verb_index)
        for pattern in self._patterns.for_predicate(lemma):
            target_chunk = self._resolve(clause, pattern.target)
            if target_chunk is None:
                continue
            polarity, words, source_role, phrase_negated = self._pattern_polarity(
                clause, pattern
            )
            if polarity is None or not polarity.is_polar:
                continue
            # A negative determiner inside the source phrase ("has no
            # flaws") has already flipped the phrase score; flipping
            # again at clause level would double-count the same "no".
            flip = negated and not phrase_negated and self._handle_negation
            if flip:
                polarity = polarity.invert()
                self._obs.metrics.counter("analyzer.negations_applied").inc()
            self._obs.metrics.counter(
                "analyzer.pattern_matches", pattern=pattern.format()
            ).inc()
            provenance = Provenance(
                predicate=lemma,
                pattern=pattern.format(),
                source_role=source_role,
                target_role=pattern.target.role,
                sentiment_words=words,
                negated=flip,
                holder=self._opinion_holder(clause, pattern),
            )
            spans = self._target_spans(clause, pattern.target, target_chunk)
            return ClauseAssignment(spans=spans, polarity=polarity, provenance=provenance)
        return None

    @staticmethod
    def _opinion_holder(clause: Clause, pattern: SentimentPattern) -> str:
        """The opinion source: the writer, or a named third party.

        When the sentiment lands on the object ("Analysts criticized X"),
        the grammatical subject holds the opinion — unless it is a
        first-person pronoun, which still means the writer.
        """
        if pattern.target.role != "OP" or clause.subject is None:
            return "writer"
        subject_text = clause.subject.text
        if subject_text.lower() in {"i", "we", "me", "us"}:
            return "writer"
        return subject_text

    def _pattern_polarity(
        self, clause: Clause, pattern: SentimentPattern
    ) -> tuple[Polarity | None, tuple[str, ...], str, bool]:
        if pattern.polarity is not None:
            return pattern.polarity, (clause.predicate_lemma,), "", False
        source_chunk = self._resolve(clause, pattern.source)
        if source_chunk is None:
            return None, (), pattern.source.role, False
        sentiment = self._scorer.score_chunk(source_chunk)
        if not sentiment.is_polar:
            return None, (), pattern.source.role, False
        polarity = sentiment.polarity
        if pattern.source.invert:
            polarity = polarity.invert()
        return polarity, sentiment.sentiment_words, pattern.source.role, sentiment.negated

    @staticmethod
    def _resolve(clause: Clause, ref: ComponentRef) -> Chunk | None:
        """The clause chunk a component reference points at, if present."""
        if ref.role == "SP":
            return clause.subject
        if ref.role == "OP":
            return clause.object
        if ref.role == "CP":
            return clause.complement
        pp = clause.prep_phrase(*ref.prepositions)
        return pp.noun_phrase if pp is not None else None

    def _target_spans(
        self, clause: Clause, ref: ComponentRef, target_chunk: Chunk
    ) -> tuple[Span, ...]:
        """Character spans the assignment covers.

        A subject target also covers its pre-verbal PP attachments, so a
        spot inside "the support *in the NR70 series*" receives the
        sentiment assigned to the subject.
        """
        spans = [target_chunk.span]
        if ref.role == "SP":
            for pp in clause.prep_phrases:
                if (
                    pp.noun_phrase.span.start >= target_chunk.span.end
                    and pp.noun_phrase.span.end <= clause.predicate.span.start
                ):
                    spans.append(pp.noun_phrase.span)
        return tuple(spans)

    @staticmethod
    def _negation_verb_before(clause: Clause, verb_index: int) -> bool:
        """Negation verb earlier in the group than the matched verb.

        "fails to impress" flips the polarity that "impress" assigns, but
        when "fail" itself is the matched predicate there is nothing to
        flip.
        """
        verbs = [t for t in clause.predicate.tokens if t.tag in penn.VERB_TAGS]
        if verb_index <= 0:
            return False
        from ..nlp.lemmatizer import lemmatize

        return any(
            lemmatize(v.text, v.tag) in NEGATION_VERBS for v in verbs[:verb_index]
        )

    def _contrast_assignment(
        self, clause: Clause, assignment: ClauseAssignment
    ) -> ClauseAssignment | None:
        """Contrastive phrases receive the opposite polarity.

        "Unlike X, Y is great" and comparatives "Y is better than X" both
        imply X sits on the other side of the judgment.
        """
        pp = clause.prep_phrase("unlike", "than")
        if pp is None:
            return None
        provenance = Provenance(
            predicate=clause.predicate_lemma,
            pattern=f"contrast({pp.preposition})",
            target_role="PP",
            sentiment_words=assignment.provenance.sentiment_words,
            negated=assignment.provenance.negated,
        )
        return ClauseAssignment(
            spans=(pp.noun_phrase.span,),
            polarity=assignment.polarity.invert(),
            provenance=provenance,
        )

    def pronoun_assignment(self, tagged: TaggedSentence) -> ClauseAssignment | None:
        """An assignment whose target is a bare subject pronoun, if any.

        Supports the context-window rule: "It is superb." carries
        sentiment that belongs to whatever the previous sentence named.
        """
        pronouns = {"it", "this", "they", "these"}
        by_start = {t.start: t for t in tagged.tokens}
        for assignment in self.analyze_sentence(tagged):
            for span in assignment.spans:
                token = by_start.get(span.start)
                if (
                    token is not None
                    and token.end == span.end
                    and token.lower in pronouns
                ):
                    return assignment
        return None

    # -- ablation fallback ---------------------------------------------------------

    def _lexicon_only_assignments(self, tagged: TaggedSentence) -> list[ClauseAssignment]:
        """Pattern-free mode: whole-sentence phrase polarity (ablation)."""
        sentiment = self._scorer.score_tokens(tagged.tokens)
        if not sentiment.is_polar:
            return []
        provenance = Provenance(
            pattern="lexicon-only",
            sentiment_words=sentiment.sentiment_words,
            negated=sentiment.negated,
        )
        return [
            ClauseAssignment(
                spans=(tagged.span,), polarity=sentiment.polarity, provenance=provenance
            )
        ]

    # -- sentiment-bearing filter (mode B) --------------------------------------

    def bears_sentiment(self, tagged: TaggedSentence) -> bool:
        """Quick test: does the sentence contain any sentiment term?

        Mode B "spots sentiment terms and analyzes each sentiment-bearing
        sentence"; sentences that fail this test are skipped wholesale.
        """
        polarity = self._lexicon.polarity
        for token in tagged.tokens:
            if polarity(token.text, token.tag).is_polar:
                return True
            # Predicate presence alone (token.lower in the precompiled
            # self._predicate_lemmas) does not bear sentiment.
        return False
