"""Spotting: subject-term occurrences and named entities.

Two spotters, mirroring the paper's two operational modes:

* :class:`SubjectSpotter` — "identifies occurrences of arbitrary terms or
  phrases within documents ... subject terms are grouped into synonym
  sets" (mode with a predefined subject list);
* :class:`NamedEntitySpotter` — "detects all capitalized noun phrases ...
  a set of heuristics is applied to each candidate name to determine
  where the split has to be made" (open-subject mode).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nlp import penn
from ..nlp.ahocorasick import build_automaton
from ..nlp.tokens import Sentence, Span, TaggedSentence, Token
from .model import Spot, Subject

#: Lowercase connectors allowed inside a candidate entity name.
_NAME_CONNECTORS = frozenset({"and", "of", "&", "de", "la"})

#: Connectors that trigger a split into separate entities.
_SPLIT_PREPOSITIONS = frozenset({"of", "at", "in", "for", "from"})
_SPLIT_CONJUNCTIONS = frozenset({"and", "&", "or"})

#: Sentence-initial words never treated as names even when capitalised.
_COMMON_SENTENCE_STARTERS = frozenset(
    "the a an this that these those it its they i we you he she there "
    "but and or so yet however overall unfortunately fortunately".split()
)


@dataclass(frozen=True)
class TermCollision:
    """Two subjects whose terms collapse to the same token key.

    ``term.lower().split()`` erases case and internal-whitespace
    differences, so "Sony  PDA" and "Sony PDA" are the same key.  The
    first subject registered keeps the key; later claimants are recorded
    here instead of silently overwriting it.
    """

    key: tuple[str, ...]
    term: str
    kept: Subject
    ignored: Subject


def compile_terms(
    subjects: list[Subject],
) -> tuple[dict[tuple[str, ...], Subject], list[TermCollision]]:
    """Build the ``token-key -> subject`` table, first subject wins.

    Iteration order is the subject list order, then each subject's term
    order (canonical first), so the mapping is deterministic.  A key
    claimed again by the *same* subject (a synonym that normalises to an
    existing term) is skipped silently; a key claimed by a *different*
    subject is a collision and is reported.
    """
    by_term: dict[tuple[str, ...], Subject] = {}
    collisions: list[TermCollision] = []
    for subject in subjects:
        for term in subject.all_terms:
            key = tuple(term.lower().split())
            if not key:
                continue
            owner = by_term.get(key)
            if owner is None:
                by_term[key] = subject
            elif owner is not subject:
                collisions.append(
                    TermCollision(key=key, term=term, kept=owner, ignored=subject)
                )
    return by_term, collisions


class AhoCorasickSpotter:
    """Find subject-term occurrences (spots) in tokenized documents.

    Matching is case-insensitive over token n-grams, longest term first,
    so "Sony PDA" wins over "Sony" at the same position.  Each spot keeps
    its synonym-set identity: the :class:`Subject` it belongs to.

    All subjects and synonyms are compiled once into a single
    :class:`~repro.nlp.ahocorasick.TokenAutomaton`, so spotting is one
    pass over the token stream regardless of lexicon size.  The match
    semantics (leftmost, longest at each start, non-overlapping) are
    byte-identical to the historical n-gram scanner, which survives as
    the differential-test reference in ``tests/support/reference.py``.
    """

    def __init__(self, subjects: list[Subject]):
        self._subjects = list(subjects)
        self._by_term, self._collisions = compile_terms(self._subjects)
        self._max_len = max((len(k) for k in self._by_term), default=0)
        self._automaton = build_automaton(self._by_term.items())

    @property
    def subjects(self) -> list[Subject]:
        return list(self._subjects)

    @property
    def collisions(self) -> list[TermCollision]:
        """Cross-subject term-key collisions found at compile time."""
        return list(self._collisions)

    def spot_sentence(self, sentence: Sentence, document_id: str = "") -> list[Spot]:
        """All spots in one sentence, left to right, non-overlapping."""
        if not self._by_term:
            return []
        tokens = sentence.tokens
        lowered = [t.lower for t in tokens]
        spots: list[Spot] = []
        for start, length, subject in self._automaton.leftmost_longest(lowered):
            span = Span(tokens[start].start, tokens[start + length - 1].end)
            term = " ".join(t.text for t in tokens[start : start + length])
            spots.append(
                Spot(
                    subject=subject,
                    term=term,
                    span=span,
                    sentence_index=sentence.index,
                    document_id=document_id,
                )
            )
        return spots

    def spot_document(self, sentences: list[Sentence], document_id: str = "") -> list[Spot]:
        """All spots across a document's sentences."""
        spots: list[Spot] = []
        for sentence in sentences:
            spots.extend(self.spot_sentence(sentence, document_id))
        return spots


class SubjectSpotter(AhoCorasickSpotter):
    """The production subject spotter (automaton-backed).

    The name survives from the original n-gram implementation; every
    call site keeps working and transparently gets the single-pass
    automaton.  The naive scanner itself lives on only as the
    equivalence-test reference.
    """



class NamedEntitySpotter:
    """Capitalized-noun-phrase entity detection with split heuristics.

    Reproduces the paper's example: "Prof. Wilson of American University"
    splits into "Prof. Wilson" and "American University".
    """

    def spot_sentence(self, sentence: TaggedSentence, document_id: str = "") -> list[Spot]:
        """Named-entity spots in one tagged sentence."""
        candidates = self._candidate_runs(sentence)
        spots: list[Spot] = []
        for run in candidates:
            for part in self._split(run):
                name = " ".join(t.text for t in part)
                span = Span(part[0].start, part[-1].end)
                subject = Subject(canonical=name)
                spots.append(
                    Spot(
                        subject=subject,
                        term=name,
                        span=span,
                        sentence_index=sentence.index,
                        document_id=document_id,
                    )
                )
        return spots

    def spot_document(self, sentences: list[TaggedSentence], document_id: str = "") -> list[Spot]:
        """Named-entity spots across a document, merged by surface name."""
        spots: list[Spot] = []
        for sentence in sentences:
            spots.extend(self.spot_sentence(sentence, document_id))
        return spots

    # -- internals ----------------------------------------------------------

    def _candidate_runs(self, sentence: TaggedSentence) -> list[list]:
        """Maximal runs of capitalized tokens plus allowed connectors."""
        runs: list[list] = []
        current: list = []
        for position, token in enumerate(sentence.tokens):
            if self._is_name_token(token, position):
                current.append(token)
            elif current and token.lower in _NAME_CONNECTORS:
                # Connector stays only if a capitalized token follows.
                nxt = (
                    sentence.tokens[position + 1]
                    if position + 1 < len(sentence.tokens)
                    else None
                )
                if nxt is not None and self._is_name_token(nxt, position + 1):
                    current.append(token)
                else:
                    self._flush(runs, current)
                    current = []
            else:
                self._flush(runs, current)
                current = []
        self._flush(runs, current)
        return runs

    @staticmethod
    def _flush(runs: list[list], current: list) -> None:
        # Drop trailing connectors and singleton connectors.
        while current and current[-1].text.lower() in _NAME_CONNECTORS:
            current.pop()
        if current:
            runs.append(list(current))

    @staticmethod
    def _is_name_token(token, position: int) -> bool:
        if not token.is_capitalized:
            return False
        if position == 0 and token.lower in _COMMON_SENTENCE_STARTERS:
            return False
        if not penn.is_proper_noun(token.tag) and not (
            position > 0 and token.tag in penn.NOUN_TAGS
        ):
            # Sentence-initial capitalized common nouns ("Battery life is
            # ...") are not names; mid-sentence capitalized nouns are.
            if not (position == 0 and penn.is_proper_noun(token.tag)):
                return False
        return True

    def _split(self, run: list) -> list[list]:
        """Apply the paper's split heuristics to a candidate name."""
        parts: list[list] = []
        current: list = []
        for token in run:
            lower = token.lower
            if lower in _SPLIT_PREPOSITIONS or lower in _SPLIT_CONJUNCTIONS:
                if current:
                    parts.append(current)
                current = []
                continue
            if token.text.endswith("'s"):
                current.append(token)
                parts.append(current)
                current = []
                continue
            current.append(token)
        if current:
            parts.append(current)
        return [p for p in parts if p]
