"""The sentiment lexicon: term polarity definitions.

Entries follow the paper's format::

    <lexical_entry> <POS> <sent_category>

e.g. ``"excellent" JJ +``.  ``lexical_entry`` may be a multi-word term;
``POS`` is the *required* coarse POS tag of the entry (``JJ``, ``NN``,
``VB``, ``RB``); ``sent_category`` is ``+`` or ``-``.

The default lexicon is assembled from :mod:`repro.lexicons` plus
participial adjectives derived from the sentiment verbs ("disappointing",
"disappointed"), giving roughly the paper's scale ("about 3000 sentiment
term entries including about 2500 adjectives").
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..lexicons import adjectives, adverbs, nouns, verbs
from ..nlp import penn
from ..nlp.lemmatizer import Lemmatizer
from .model import Polarity

#: Coarse POS classes the lexicon distinguishes.
_COARSE = {"JJ": "JJ", "NN": "NN", "VB": "VB", "RB": "RB"}


def coarse_pos(tag: str) -> str | None:
    """Map a Penn tag to the lexicon's coarse POS class, if sentiment-bearing."""
    if penn.is_adjective(tag) or tag in {"VBN", "VBG"}:
        # Participles in modifier position act as adjectives; the lexicon
        # lists "disappointing"/"disappointed" as JJ entries.
        return "JJ"
    if tag in penn.NOUN_TAGS:
        return "NN"
    if tag in penn.VERB_TAGS:
        return "VB"
    if tag in penn.ADVERB_TAGS:
        return "RB"
    return None


@dataclass(frozen=True)
class LexiconEntry:
    """One sentiment lexicon entry."""

    term: str
    pos: str
    polarity: Polarity

    def format(self) -> str:
        """Serialize in the paper's file format."""
        return f'"{self.term}" {self.pos} {self.polarity.value}'


class SentimentLexicon:
    """Queryable sentiment term dictionary.

    Lookup is by (term, coarse POS).  Verb and noun lookups fall back to
    the lemma so "impresses"/"defects" hit "impress"/"defect".
    """

    #: Probe-cache bound; the cache is cleared wholesale when it fills.
    _PROBE_CACHE_MAX = 65536

    def __init__(self, entries: Iterable[LexiconEntry] = ()):
        self._entries: dict[tuple[str, str], Polarity] = {}
        self._lemmatizer = Lemmatizer()
        # (word.lower(), tag) -> resolved Polarity, including all the
        # lemma/participle/graded-form fallbacks.  Probing the lexicon is
        # a per-token hot-path operation (phrase scoring and the mode-B
        # sentiment-bearing filter); interning resolved probes turns the
        # fallback chain into one dict hit for every repeated token.
        self._probe_cache: dict[tuple[str, str], Polarity] = {}
        for entry in entries:
            self.add(entry)

    # -- construction ---------------------------------------------------------

    def add(self, entry: LexiconEntry) -> None:
        """Insert or overwrite one entry."""
        if entry.pos not in _COARSE:
            raise ValueError(f"lexicon POS must be one of {sorted(_COARSE)}, got {entry.pos!r}")
        self._entries[(entry.term.lower(), entry.pos)] = entry.polarity
        self._probe_cache.clear()

    def add_term(self, term: str, pos: str, polarity: Polarity | str) -> None:
        """Convenience: add from raw fields; polarity may be ``+``/``-``."""
        if isinstance(polarity, str):
            polarity = Polarity.from_symbol(polarity)
        self.add(LexiconEntry(term, pos, polarity))

    def merge(self, other: "SentimentLexicon") -> None:
        """Add all entries of *other*, overwriting on conflict."""
        self._entries.update(other._entries)
        self._probe_cache.clear()

    # -- queries --------------------------------------------------------------

    def polarity(self, word: str, tag: str) -> Polarity:
        """Polarity of *word* tagged *tag*; NEUTRAL when not in the lexicon."""
        key = (word.lower(), tag)
        cached = self._probe_cache.get(key)
        if cached is not None:
            return cached
        result = self._resolve_polarity(key[0], tag)
        if len(self._probe_cache) >= self._PROBE_CACHE_MAX:
            self._probe_cache.clear()
        self._probe_cache[key] = result
        return result

    def _resolve_polarity(self, lower: str, tag: str) -> Polarity:
        """Uncached probe with all lemma/graded-form fallbacks."""
        pos = coarse_pos(tag)
        if pos is None:
            return Polarity.NEUTRAL
        hit = self._entries.get((lower, pos))
        if hit is not None:
            return hit
        if pos in {"NN", "VB"}:
            lemma = self._lemmatizer.lemmatize(lower, tag)
            if lemma != lower:
                hit = self._entries.get((lemma, pos))
                if hit is not None:
                    return hit
        if pos == "JJ" and tag in {"VBN", "VBG"}:
            # Participle without its own entry: fall back to the verb.
            lemma = self._lemmatizer.lemmatize(lower, tag)
            hit = self._entries.get((lemma, "VB"))
            if hit is not None:
                return hit
        if pos == "JJ" and tag in {"JJR", "JJS"}:
            # Graded forms fall back to the base adjective ("better" →
            # "good", "sharpest" → "sharp").
            lemma = self._lemmatizer.lemmatize(lower, tag)
            hit = self._entries.get((lemma, "JJ"))
            if hit is not None:
                return hit
        if pos == "RB" and tag in {"RBR", "RBS"}:
            lemma = self._lemmatizer.lemmatize(lower, tag)
            hit = self._entries.get((lemma, "RB"))
            if hit is not None:
                return hit
        return Polarity.NEUTRAL

    def contains(self, term: str, pos: str) -> bool:
        """True when (term, pos) is an exact entry."""
        return (term.lower(), pos) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LexiconEntry]:
        for (term, pos), polarity in sorted(self._entries.items()):
            yield LexiconEntry(term, pos, polarity)

    def counts_by_pos(self) -> dict[str, int]:
        """Entry counts per coarse POS (for reporting)."""
        out: dict[str, int] = {}
        for (_, pos) in self._entries:
            out[pos] = out.get(pos, 0) + 1
        return out

    # -- tagger support ---------------------------------------------------------

    def tagger_entries(self) -> dict[str, str]:
        """Single-word ``word -> Penn tag`` map to extend the POS tagger.

        Sentiment adjectives/adverbs/nouns are exactly the words the
        default tagger lexicon is most likely to miss.
        """
        out: dict[str, str] = {}
        for (term, pos) in self._entries:
            if " " in term or "-" in term:
                continue
            out.setdefault(term, pos)
        return out

    # -- the paper's file format ---------------------------------------------

    def dump(self, stream: io.TextIOBase) -> None:
        """Write all entries in the paper's ``"term" POS ±`` format."""
        for entry in self:
            stream.write(entry.format() + "\n")

    @classmethod
    def load(cls, stream: io.TextIOBase) -> "SentimentLexicon":
        """Parse the paper's file format (inverse of :meth:`dump`)."""
        lexicon = cls()
        for lineno, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                term, rest = line.rsplit('" ', 1)
                term = term.lstrip('"')
                pos, symbol = rest.split()
            except ValueError as exc:
                raise ValueError(f"malformed lexicon line {lineno}: {line!r}") from exc
            lexicon.add_term(term, pos, symbol)
        return lexicon


# -- default lexicon assembly ---------------------------------------------------


def _participle(verb: str, suffix: str) -> str:
    """Regular participle orthography: love→loved/loving, worry→worried."""
    if suffix == "ed":
        if verb.endswith("e"):
            return verb + "d"
        if verb.endswith("y") and len(verb) > 2 and verb[-2] not in "aeiou":
            return verb[:-1] + "ied"
        return verb + "ed"
    # "ing"
    if verb.endswith("e") and not verb.endswith(("ee", "ye")):
        return verb[:-1] + "ing"
    return verb + "ing"


def default_lexicon() -> SentimentLexicon:
    """The built-in lexicon: curated lists + derived participial adjectives."""
    lexicon = SentimentLexicon()
    for term, pos, symbol in adjectives.entries():
        lexicon.add_term(term, pos, symbol)
    for term, pos, symbol in nouns.entries():
        lexicon.add_term(term, pos, symbol)
    for term, pos, symbol in verbs.entries():
        lexicon.add_term(term, pos, symbol)
    for term, pos, symbol in adverbs.entries():
        lexicon.add_term(term, pos, symbol)
    # Participial adjectives derived from sentiment verbs.
    for verb_list, symbol in ((verbs.POSITIVE_VERBS, "+"), (verbs.NEGATIVE_VERBS, "-")):
        for verb in verb_list:
            for suffix in ("ed", "ing"):
                form = _participle(verb, suffix)
                if not lexicon.contains(form, "JJ"):
                    lexicon.add_term(form, "JJ", symbol)
    return lexicon
