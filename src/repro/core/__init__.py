"""The paper's primary contribution: the target-level sentiment miner.

Public API highlights:

* :class:`~repro.core.miner.SentimentMiner` — end-to-end mining in both
  operational modes (predefined subjects / open subjects);
* :class:`~repro.core.analyzer.SentimentAnalyzer` — sentence-level
  sentiment extraction with target association;
* :class:`~repro.core.features.FeatureExtractor` — bBNP + likelihood-ratio
  feature term extraction;
* :class:`~repro.core.lexicon.SentimentLexicon` and
  :class:`~repro.core.patterns.SentimentPatternDB` — the two linguistic
  resources of Section 4.2.
"""

from .analyzer import ClauseAssignment, SentimentAnalyzer
from .context import ContextBuilder, ContextWindowRule, SentimentContext
from .entity import Annotation, Entity
from .disambiguation import (
    DisambiguationConfig,
    DisambiguationResult,
    Disambiguator,
    TopicTermSet,
    idf_from_documents,
)
from .features import (
    FeatureExtractionConfig,
    FeatureExtractor,
    likelihood_ratio,
)
from .lexicon import LexiconEntry, SentimentLexicon, default_lexicon
from .miner import MiningResult, MiningStats, SentimentMiner
from .mining import (
    CorpusMiner,
    EntityMiner,
    EntityStore,
    MinerPipeline,
    PipelineError,
    PipelineReport,
    run_corpus_miner,
)
from .model import (
    FeatureTerm,
    Polarity,
    Provenance,
    SentimentJudgment,
    Spot,
    Subject,
)
from .patterns import (
    ComponentRef,
    SentimentPattern,
    SentimentPatternDB,
    default_pattern_db,
    parse_pattern_line,
)
from .phrase import PhraseScorer, PhraseSentiment
from .spotting import AhoCorasickSpotter, NamedEntitySpotter, SubjectSpotter, TermCollision

__all__ = [
    "Annotation",
    "ClauseAssignment",
    "ComponentRef",
    "ContextBuilder",
    "ContextWindowRule",
    "CorpusMiner",
    "Entity",
    "EntityMiner",
    "EntityStore",
    "DisambiguationConfig",
    "DisambiguationResult",
    "Disambiguator",
    "FeatureExtractionConfig",
    "FeatureExtractor",
    "FeatureTerm",
    "LexiconEntry",
    "MinerPipeline",
    "MiningResult",
    "MiningStats",
    "AhoCorasickSpotter",
    "NamedEntitySpotter",
    "PipelineError",
    "PipelineReport",
    "PhraseScorer",
    "PhraseSentiment",
    "Polarity",
    "Provenance",
    "SentimentAnalyzer",
    "SentimentContext",
    "SentimentJudgment",
    "SentimentLexicon",
    "SentimentMiner",
    "SentimentPattern",
    "SentimentPatternDB",
    "Spot",
    "Subject",
    "SubjectSpotter",
    "TermCollision",
    "TopicTermSet",
    "default_lexicon",
    "default_pattern_db",
    "idf_from_documents",
    "likelihood_ratio",
    "parse_pattern_line",
    "run_corpus_miner",
]
