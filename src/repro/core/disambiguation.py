"""Spot disambiguation: is this occurrence really about the subject?

"The disambiguator evaluates each spot to determine if it is truly related
to the intended subject ... It utilizes user-defined sets of terms that
are positively (or negatively) related to the topic for each domain.  For
each spot, it computes a score for a local context surrounding the spot,
and a global context (the full document).  The score is based on the
on-topic and off-topic terms found, their TF·IDF scores, and their types
(single term or lexical affinity).  If the global context score passes a
threshold, all spots on the page are considered on-topic.  Otherwise it
checks whether the combined local context and global context score passes
another threshold." (paper Section 3, after Amitay et al.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from ..obs.audit import FILTERED, KEPT, NULL_AUDIT, AuditTrail, NullAuditTrail
from ..nlp.tokens import Sentence, Token
from .model import Spot


@dataclass(frozen=True)
class TopicTermSet:
    """User-defined on-topic / off-topic context terms for one domain.

    Terms may be single words or two-word *lexical affinities*; affinities
    are stronger evidence and receive double weight, as in the multi-
    resolution disambiguation paper the system builds on.
    """

    on_topic: frozenset[str]
    off_topic: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        overlap = self.on_topic & self.off_topic
        if overlap:
            raise ValueError(f"terms cannot be both on- and off-topic: {sorted(overlap)}")

    @classmethod
    def build(cls, on_topic: Iterable[str], off_topic: Iterable[str] = ()) -> "TopicTermSet":
        return cls(
            on_topic=frozenset(t.lower() for t in on_topic),
            off_topic=frozenset(t.lower() for t in off_topic),
        )


@dataclass(frozen=True)
class DisambiguationConfig:
    """Thresholds and window size for the two-resolution scoring."""

    local_window: int = 30  # tokens on each side of the spot
    global_threshold: float = 2.0
    combined_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.local_window <= 0:
            raise ValueError("local_window must be positive")


@dataclass
class DisambiguationResult:
    """Partition of a document's spots into on-topic and off-topic."""

    on_topic: list[Spot] = field(default_factory=list)
    off_topic: list[Spot] = field(default_factory=list)
    global_score: float = 0.0

    @property
    def total(self) -> int:
        return len(self.on_topic) + len(self.off_topic)


class Disambiguator:
    """Two-resolution (local + global) context scorer.

    Parameters
    ----------
    terms:
        The domain's on/off-topic term sets.
    config:
        Thresholds; the defaults suit the synthetic corpora.
    idf:
        Optional term -> IDF weight map (e.g. from the platform indexer).
        Unknown terms weigh 1.0.
    """

    def __init__(
        self,
        terms: TopicTermSet,
        config: DisambiguationConfig | None = None,
        idf: dict[str, float] | None = None,
    ):
        self._terms = terms
        self._config = config or DisambiguationConfig()
        self._idf = idf or {}

    # -- public API --------------------------------------------------------------

    def disambiguate(
        self,
        sentences: list[Sentence],
        spots: list[Spot],
        audit: AuditTrail | NullAuditTrail | None = None,
    ) -> DisambiguationResult:
        """Partition *spots* given the document's sentences.

        When an :class:`~repro.obs.audit.AuditTrail` is supplied, every
        spot's keep/filter decision is recorded with the resolution that
        made it (``global-pass``, ``combined-pass``, ``combined-fail``)
        and the scores involved.
        """
        audit = audit if audit is not None else NULL_AUDIT
        tokens = [t for s in sentences for t in s.tokens]
        result = DisambiguationResult()
        result.global_score = self._score(tokens)
        if result.global_score >= self._config.global_threshold:
            result.on_topic = list(spots)
            if audit.enabled:
                for spot in spots:
                    audit.record_spot(
                        spot.subject.canonical,
                        KEPT,
                        "global-pass",
                        document_id=spot.document_id,
                        sentence_index=spot.sentence_index,
                        term=spot.term,
                        global_score=result.global_score,
                        threshold=self._config.global_threshold,
                    )
            return result
        for spot in spots:
            local = self._local_tokens(tokens, spot)
            local_score = self._score(local)
            combined = local_score + result.global_score
            kept = combined >= self._config.combined_threshold
            if kept:
                result.on_topic.append(spot)
            else:
                result.off_topic.append(spot)
            if audit.enabled:
                audit.record_spot(
                    spot.subject.canonical,
                    KEPT if kept else FILTERED,
                    "combined-pass" if kept else "combined-fail",
                    document_id=spot.document_id,
                    sentence_index=spot.sentence_index,
                    term=spot.term,
                    global_score=result.global_score,
                    local_score=local_score,
                    combined_score=combined,
                    threshold=self._config.combined_threshold,
                )
        return result

    # -- scoring -------------------------------------------------------------------

    def _score(self, tokens: list[Token]) -> float:
        """Signed evidence score over a token window."""
        score = 0.0
        words = [t.lower for t in tokens]
        for i, word in enumerate(words):
            if word in self._terms.on_topic:
                score += self._weight(word)
            elif word in self._terms.off_topic:
                score -= self._weight(word)
            if i + 1 < len(words):
                bigram = f"{word} {words[i + 1]}"
                # Lexical affinities count double.
                if bigram in self._terms.on_topic:
                    score += 2.0 * self._weight(bigram)
                elif bigram in self._terms.off_topic:
                    score -= 2.0 * self._weight(bigram)
        return score

    def _weight(self, term: str) -> float:
        return self._idf.get(term, 1.0)

    def _local_tokens(self, tokens: list[Token], spot: Spot) -> list[Token]:
        """Tokens within the local window around the spot."""
        window = self._config.local_window
        inside = [i for i, t in enumerate(tokens) if spot.span.overlaps(t.span)]
        if not inside:
            return []
        lo = max(0, inside[0] - window)
        hi = min(len(tokens), inside[-1] + window + 1)
        return tokens[lo:hi]


def idf_from_documents(tokenized_documents: Iterable[list[str]]) -> dict[str, float]:
    """Compute IDF weights from lowercased token lists (one per document)."""
    df: dict[str, int] = {}
    n = 0
    for words in tokenized_documents:
        n += 1
        for word in set(words):
            df[word] = df.get(word, 0) + 1
    if n == 0:
        return {}
    return {word: math.log(n / count) + 1.0 for word, count in df.items()}
