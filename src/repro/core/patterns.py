"""The sentiment pattern database: predicate sentiment-transfer rules.

Each entry has the paper's shape ``<predicate> <sent_category> <target>``:

* ``predicate`` — verb lemma the rule applies to;
* ``sent_category`` — ``+``/``-`` (fixed polarity) or a source component
  ``SP``/``OP``/``CP``/``PP(prep[;prep...])`` whose phrase polarity is
  transferred, optionally prefixed with ``~`` to invert it;
* ``target`` — component receiving the sentiment: ``SP``/``OP``/
  ``PP(prep[;prep...])``.

Examples straight from the paper::

    impress + PP(by;with)      I am impressed by the picture quality.
    be CP SP                   The colors are vibrant.
    offer OP SP                The company offers mediocre services.
"""

from __future__ import annotations

import io
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..lexicons import patterns as pattern_data
from .model import Polarity

_ROLES = ("SP", "OP", "CP", "PP")
_COMPONENT_RE = re.compile(r"^(~)?(SP|OP|CP|PP)(?:\(([^)]*)\))?$")


@dataclass(frozen=True)
class ComponentRef:
    """Reference to a sentence component in a pattern rule."""

    role: str
    prepositions: tuple[str, ...] = ()
    invert: bool = False

    def __post_init__(self) -> None:
        if self.role not in _ROLES:
            raise ValueError(f"unknown component role {self.role!r}")
        if self.prepositions and self.role != "PP":
            raise ValueError("only PP components take prepositions")

    def format(self) -> str:
        text = ("~" if self.invert else "") + self.role
        if self.prepositions:
            text += "(" + ";".join(self.prepositions) + ")"
        return text

    @classmethod
    def parse(cls, text: str) -> "ComponentRef":
        match = _COMPONENT_RE.match(text.strip())
        if match is None:
            raise ValueError(f"malformed component reference {text!r}")
        invert, role, preps = match.groups()
        prepositions = tuple(p.strip().lower() for p in preps.split(";") if p.strip()) if preps else ()
        if role == "PP" and not prepositions:
            raise ValueError(f"PP component needs prepositions: {text!r}")
        return cls(role=role, prepositions=prepositions, invert=bool(invert))


@dataclass(frozen=True)
class SentimentPattern:
    """One predicate rule.

    Exactly one of ``polarity`` / ``source`` is set: a fixed-polarity rule
    carries the sentiment itself; a transfer rule reads it from the source
    component's phrase.
    """

    predicate: str
    target: ComponentRef
    polarity: Polarity | None = None
    source: ComponentRef | None = None

    def __post_init__(self) -> None:
        if (self.polarity is None) == (self.source is None):
            raise ValueError("pattern needs exactly one of polarity/source")
        if self.target.invert:
            raise ValueError("targets cannot be inverted")

    @property
    def is_transfer(self) -> bool:
        return self.source is not None

    def format(self) -> str:
        category = self.polarity.value if self.polarity else self.source.format()
        return f"{self.predicate} {category} {self.target.format()}"


def parse_pattern_line(line: str) -> SentimentPattern:
    """Parse one ``<predicate> <sent_category> <target>`` line."""
    parts = line.split()
    if len(parts) != 3:
        raise ValueError(f"pattern line needs 3 fields: {line!r}")
    predicate, category, target_text = parts
    target = ComponentRef.parse(target_text)
    if category in ("+", "-"):
        return SentimentPattern(
            predicate=predicate.lower(),
            target=target,
            polarity=Polarity.from_symbol(category),
        )
    source = ComponentRef.parse(category)
    return SentimentPattern(predicate=predicate.lower(), target=target, source=source)


class SentimentPatternDB:
    """Predicate -> ordered rule list, with the paper's lookup semantics.

    "The sentiment miner identifies the predicate of the sentence from the
    parse and searches the sentiment pattern database to find the best
    matching sentiment pattern of the predicate."  Best match = the first
    rule (in insertion order) whose components are present in the clause;
    that check lives in the analyzer, which iterates :meth:`for_predicate`.
    """

    def __init__(self, patterns: Iterable[SentimentPattern] = ()):
        self._by_predicate: dict[str, list[SentimentPattern]] = {}
        for pattern in patterns:
            self.add(pattern)

    def add(self, pattern: SentimentPattern) -> None:
        """Append a rule for its predicate (order defines priority)."""
        self._by_predicate.setdefault(pattern.predicate, []).append(pattern)

    def add_line(self, line: str) -> None:
        """Parse and append one DSL line."""
        self.add(parse_pattern_line(line))

    def for_predicate(self, lemma: str) -> list[SentimentPattern]:
        """Rules for *lemma*, in priority order (empty when unknown)."""
        return list(self._by_predicate.get(lemma.lower(), ()))

    def __contains__(self, lemma: str) -> bool:
        return lemma.lower() in self._by_predicate

    def __len__(self) -> int:
        return sum(len(rules) for rules in self._by_predicate.values())

    def __iter__(self) -> Iterator[SentimentPattern]:
        for predicate in sorted(self._by_predicate):
            yield from self._by_predicate[predicate]

    @property
    def predicates(self) -> list[str]:
        return sorted(self._by_predicate)

    # -- file format (one DSL line per rule) -----------------------------------

    def dump(self, stream: io.TextIOBase) -> None:
        """Write rules one per line, grouped by predicate, priority order."""
        for predicate in self.predicates:
            for pattern in self._by_predicate[predicate]:
                stream.write(pattern.format() + "\n")

    @classmethod
    def load(cls, stream: io.TextIOBase) -> "SentimentPatternDB":
        """Parse the :meth:`dump` format (``#`` comments and blanks allowed)."""
        db = cls()
        for lineno, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                db.add_line(line)
            except ValueError as exc:
                raise ValueError(f"malformed pattern line {lineno}: {line!r}") from exc
        return db


def default_pattern_db() -> SentimentPatternDB:
    """The built-in pattern database from :mod:`repro.lexicons.patterns`."""
    db = SentimentPatternDB()
    for line in pattern_data.pattern_lines():
        db.add_line(line)
    return db
