"""Phrase-level sentiment: polarity of a chunk under negation.

"The sentiment of a phrase is determined by the sentiment words in the
phrase.  For example, *excellent pictures* (JJ NN) is a positive sentiment
phrase because *excellent* (JJ) is a positive sentiment word.  For a
sentiment phrase with an adverb with negative meaning ... the sentiment
polarity of the phrase is reversed." (paper Section 4.2)

The scorer sums signed votes from lexicon hits, flipping the sign of every
word in the scope of a negator.  The paper's output is binary, so the
public result is the sign; the raw signed score is exposed for the
collocation baseline and intensity-weighting ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lexicons import adverbs as adverb_data
from ..lexicons import negation
from ..nlp.tokens import Chunk, TaggedToken
from .lexicon import SentimentLexicon
from .model import Polarity

_INTENSIFIERS = frozenset(adverb_data.INTENSIFIERS)
_DIMINISHERS = frozenset(adverb_data.DIMINISHERS)


@dataclass(frozen=True)
class PhraseSentiment:
    """Result of scoring one phrase."""

    polarity: Polarity
    score: float
    sentiment_words: tuple[str, ...]
    negated: bool

    @property
    def is_polar(self) -> bool:
        return self.polarity.is_polar


class PhraseScorer:
    """Compute phrase polarity from lexicon hits and negation scope.

    Parameters
    ----------
    lexicon:
        The sentiment lexicon to consult.
    weighted:
        When True, intensifiers scale the following sentiment word by 2
        and diminishers by 0.5.  The paper's model is unweighted; the
        option exists for the ablation benchmarks.
    """

    def __init__(self, lexicon: SentimentLexicon, weighted: bool = False):
        self._lexicon = lexicon
        self._weighted = weighted

    def score_tokens(self, tokens: tuple[TaggedToken, ...] | list[TaggedToken]) -> PhraseSentiment:
        """Score a token sequence as one phrase."""
        total = 0.0
        words: list[str] = []
        negated = False
        pending_negation = False
        pending_weight = 1.0
        for token in tokens:
            lower = token.lower
            if lower in negation.NEGATION_ADVERBS or lower in negation.NEGATION_DETERMINERS:
                pending_negation = True
                negated = True
                continue
            if lower in negation.NEGATION_QUANTIFIERS and token.tag in {"JJ", "DT"}:
                # "little support", "few merits" — quantifier use only.
                pending_negation = True
                negated = True
                continue
            if self._weighted and lower in _INTENSIFIERS:
                pending_weight = 2.0
                continue
            if self._weighted and lower in _DIMINISHERS:
                pending_weight = 0.5
                continue
            polarity = self._lexicon.polarity(token.text, token.tag)
            if polarity.is_polar:
                value = 1.0 if polarity is Polarity.POSITIVE else -1.0
                if pending_negation:
                    value = -value
                value *= pending_weight
                total += value
                words.append(lower)
            pending_weight = 1.0
            # One negator flips the rest of the phrase (scope = suffix),
            # matching the paper's phrase-reversal rule.
        if total > 0:
            polarity = Polarity.POSITIVE
        elif total < 0:
            polarity = Polarity.NEGATIVE
        else:
            polarity = Polarity.NEUTRAL
        return PhraseSentiment(
            polarity=polarity,
            score=total,
            sentiment_words=tuple(words),
            negated=negated,
        )

    def score_chunk(self, chunk: Chunk) -> PhraseSentiment:
        """Score a parser chunk (NP / ADJP / VG)."""
        return self.score_tokens(chunk.tokens)
